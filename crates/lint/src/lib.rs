//! ow-lint: crash-safety static analysis for the Otherworld workspace.
//!
//! Otherworld's crash kernel walks the raw, possibly corrupted physical
//! memory of a dead kernel (§4 of the paper); this tool machine-checks the
//! discipline that makes that survivable. Five invariants:
//!
//! 1. **recovery-panic** — no `unwrap`/`expect`/`panic!`-family macro, and
//!    no slice indexing in dead-data-handling crates, in any function
//!    transitively reachable from the crash-kernel entry points
//!    (`crates/core/src/{otherworld,reader,resurrect,supervisor}.rs`).
//!    Calls inside `supervisor::contain(...)` arguments are exempt: that
//!    is the runtime containment boundary, and injected faults live there
//!    by design.
//! 2. **untrusted-read** — no direct `PhysMem` reads outside `ow-layout`,
//!    `ow-simhw`, and an explicit allowlist, so every byte from the dead
//!    kernel flows through magic/CRC/bounds-checked cursors.
//! 3. **record-registry** — every `impl Record for T` has a `reg!(T)`
//!    layout-registry entry and a golden-encoding sample case.
//! 4. **panic-path-alloc** — the panic/kexec handoff makes no `kheap`
//!    allocations.
//! 5. **crash-point-label** — every `crash_point!` label matches the
//!    `area.component.action` grammar, is unique workspace-wide, and is
//!    declared in the crash-point registry; a registered label no code
//!    hits is stale.
//!
//! The escape hatch is a justified comment on (or directly above) the
//! offending line: `// ow-lint: allow(<rule>) -- <reason>`. An allow
//! without a reason, or one that suppresses nothing, is itself a finding.
//!
//! The analysis is a hand-rolled lexer plus a name-based call graph — no
//! dependencies, no rustc internals — so it runs as a tier-1 CI gate on a
//! bare toolchain. It is deliberately over-approximate where receiver
//! types are unknown, and blind to calls through function pointers
//! (`(image.fresh)(...)`); the supervisor's runtime containment covers
//! that residue.

#![forbid(unsafe_code)]

pub mod extract;
pub mod graph;
pub mod lexer;
pub mod rules;

pub use rules::Finding;

use graph::FileEntry;
use std::path::{Path, PathBuf};

/// What to scan and which files anchor each rule.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all other paths are relative to it.
    pub root: PathBuf,
    /// Directories (relative) to scan for `.rs` files.
    pub scan: Vec<String>,
    /// Files whose non-test functions are recovery-path roots (rule 1).
    pub recovery_roots: Vec<String>,
    /// Files whose functions are panic-path roots (rule 4).
    pub panic_path: Vec<String>,
    /// Path prefixes where slice indexing counts as a rule-1 violation —
    /// the crates that handle dead-kernel data. Elsewhere only
    /// unwrap/expect/panic-macros are flagged: the main kernel indexing
    /// its own live structures is not walking untrusted memory.
    pub index_scope: Vec<String>,
    /// Path prefixes exempt from rule 2 (the validated-cursor layer
    /// itself and the simulated hardware).
    pub taint_exempt: Vec<String>,
    /// Files allowed to read `PhysMem` directly, with the reason why.
    pub taint_allow: Vec<(String, String)>,
    /// The layout registry file (rule 3 `reg!` entries).
    pub registry_file: String,
    /// The golden-sample file (rule 3 sample cases).
    pub samples_file: String,
    /// The crash-point registry file (rule 5 label declarations).
    pub crashpoint_registry_file: String,
}

impl Config {
    /// The real Otherworld workspace layout, rooted at `root`.
    pub fn workspace(root: &Path) -> Config {
        let s = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        Config {
            root: root.to_path_buf(),
            // apps (user programs outside the kernel trust boundary, run
            // under containment), bench and faultinject (harness code) are
            // not scanned; see DESIGN.md.
            scan: s(&[
                "crates/core",
                "crates/crashpoint",
                "crates/kernel",
                "crates/layout",
                "crates/simhw",
                "crates/trace",
                "crates/lint",
                "src",
            ]),
            recovery_roots: s(&[
                "crates/core/src/otherworld.rs",
                "crates/core/src/reader.rs",
                "crates/core/src/resurrect.rs",
                "crates/core/src/supervisor.rs",
            ]),
            panic_path: s(&["crates/kernel/src/panic.rs", "crates/kernel/src/kexec.rs"]),
            // simhw is deliberately absent: the hardware model's accessors
            // are the bounds-checking layer itself (`Result`-returning,
            // `check()`-guarded), and its buffers are the backing store —
            // a wild write in the *simulated* kernel cannot change a host
            // `Vec`'s length. Its unwraps/asserts are still rule-1 sites.
            index_scope: s(&["crates/core/", "crates/layout/", "crates/trace/"]),
            taint_exempt: s(&["crates/layout/", "crates/simhw/", "crates/lint/"]),
            taint_allow: vec![
                (
                    "crates/kernel/src/ipc.rs".to_string(),
                    "main kernel moving bytes through memory it owns".to_string(),
                ),
                (
                    "crates/kernel/src/swap.rs".to_string(),
                    "main kernel paging its own frames to its own swap".to_string(),
                ),
                (
                    "crates/kernel/src/pagecache.rs".to_string(),
                    "main kernel filling cache frames it just allocated".to_string(),
                ),
                (
                    "crates/kernel/src/term.rs".to_string(),
                    "main kernel rendering its own terminal frames".to_string(),
                ),
                (
                    "crates/kernel/src/vm.rs".to_string(),
                    "page-table walks over live mappings the main kernel owns".to_string(),
                ),
                (
                    "crates/trace/src/ring.rs".to_string(),
                    "the recorder owns its reserved ring frames".to_string(),
                ),
                (
                    "crates/trace/src/recover.rs".to_string(),
                    "CRC-framed ring recovery; every record is validated before use".to_string(),
                ),
            ],
            registry_file: "crates/layout/src/registry.rs".to_string(),
            samples_file: "crates/layout/src/samples.rs".to_string(),
            crashpoint_registry_file: "crates/crashpoint/src/registry.rs".to_string(),
        }
    }
}

/// The result of a lint run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub scanned_files: usize,
    /// Number of escape-hatch directives currently suppressing something.
    pub allows_used: usize,
}

impl Report {
    /// Machine-readable rendering for trend tracking (`--json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"function\":{},\"message\":{},\"via\":[",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.function),
                json_str(&f.message),
            ));
            for (j, v) in f.via.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(v));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"scanned_files\":{},\"allows_used\":{}}}",
            self.scanned_files, self.allows_used
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the lint. Fails only on I/O problems (unreadable root); findings
/// are data, not errors.
pub fn run(cfg: &Config) -> Result<Report, String> {
    let mut paths = Vec::new();
    for dir in &cfg.scan {
        let p = cfg.root.join(dir);
        if p.exists() {
            walk(&p, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for p in &paths {
        let rel = p
            .strip_prefix(&cfg.root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let (toks, directives) = lexer::lex(&src);
        let force_test = rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        let model = extract::extract(&toks, directives, force_test);
        files.push(FileEntry { path: rel, model });
    }
    let (findings, allows_used) = rules::check(cfg, &files);
    Ok(Report {
        findings,
        scanned_files: files.len(),
        allows_used,
    })
}

/// Recursive `.rs` discovery, deterministic order, skipping build output,
/// VCS internals, and the lint's own seeded-violation fixtures.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let p = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}
