//! A lightweight Rust lexer: just enough token structure for call-graph
//! extraction and rule matching, with `// ow-lint:` directives preserved.
//!
//! This is deliberately not a full Rust grammar. The lint reasons about
//! identifiers, literals, punctuation and bracket structure; everything a
//! rule needs (calls, macro invocations, slice indexing, escape-hatch
//! comments) is recoverable from that stream plus line numbers.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (raw or cooked); the decoded-ish content is kept so
    /// the record-registry rule can match registered names.
    Str(String),
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive tokens; the extractor peeks where it matters).
    Punct(char),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A parsed `// ow-lint:` escape-hatch comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Rule names inside `allow(...)`, e.g. `recovery-panic`.
    pub allows: Vec<String>,
    /// Justification text after `--`, if any.
    pub reason: Option<String>,
}

/// Lexes `src`, returning tokens and any `ow-lint:` directives.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Directive>) {
    let mut toks = Vec::new();
    let mut directives = Vec::new();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                // Line comment; harvest an ow-lint directive if present.
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                if let Some(d) = parse_directive(&text, line) {
                    directives.push(d);
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment, nested per Rust rules.
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (s, ni, nl) = lex_string(&b, i, line);
                toks.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (s, ni, nl) = lex_prefixed_string(&b, i, line);
                toks.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident not
                // closed by another `'`.
                if i + 1 < n && is_ident_start(b[i + 1]) {
                    let mut j = i + 1;
                    while j < n && is_ident(b[j]) {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        // 'a' — a char literal.
                        toks.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                        i = j + 1;
                    } else {
                        toks.push(Token {
                            tok: Tok::Lifetime,
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    if j < n && b[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < n && b[j] != '\'' {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = (j + 1).min(n);
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n {
                    let d = b[j];
                    if is_ident(d) {
                        j += 1;
                    } else if d == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                        // `1.5`, but not the range `1..5`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    tok: Tok::Num,
                    line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident(b[j]) {
                    j += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(b[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            other => {
                toks.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, directives)
}

/// Does position `i` start a raw/byte string (`r"`, `r#"`, `b"`, `br#"`)?
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < n && b[j] == 'r' {
        j += 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
    }
    j > i && j < n && b[j] == '"'
}

/// Lexes a cooked string starting at the opening quote. Returns (content,
/// next index, next line).
fn lex_string(b: &[char], start: usize, mut line: u32) -> (String, usize, u32) {
    let n = b.len();
    let mut i = start + 1;
    let mut out = String::new();
    while i < n {
        match b[i] {
            '\\' => {
                // Keep escapes undecoded; rule matching only needs plain
                // names, which contain none.
                if i + 1 < n && b[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '"' => return (out, i + 1, line),
            '\n' => {
                line += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, n, line)
}

/// Lexes a `b"…"`, `r"…"`, `r#"…"#` (etc.) string starting at the prefix.
fn lex_prefixed_string(b: &[char], start: usize, mut line: u32) -> (String, usize, u32) {
    let n = b.len();
    let mut i = start;
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < n && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    // b[i] == '"'
    if !raw {
        return lex_string(b, i, line);
    }
    i += 1;
    let mut out = String::new();
    while i < n {
        if b[i] == '"' {
            // Close only when followed by the right number of hashes.
            let mut j = i + 1;
            let mut h = 0;
            while j < n && b[j] == '#' && h < hashes {
                j += 1;
                h += 1;
            }
            if h == hashes {
                return (out, j, line);
            }
        }
        if b[i] == '\n' {
            line += 1;
        }
        out.push(b[i]);
        i += 1;
    }
    (out, n, line)
}

/// Parses `// ow-lint: allow(rule-a, rule-b) -- reason` from a line
/// comment. Returns `None` if the comment is not an ow-lint directive.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("ow-lint:")?.trim();
    let (spec, reason) = match rest.split_once("--") {
        Some((s, r)) => (
            s.trim(),
            Some(r.trim().to_string()).filter(|r| !r.is_empty()),
        ),
        None => (rest, None),
    };
    let inner = spec.strip_prefix("allow(")?.strip_suffix(')')?;
    let allows: Vec<String> = inner
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if allows.is_empty() {
        return None;
    }
    Some(Directive {
        line,
        allows,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // panic!("in comment")
            /* unwrap() in /* nested */ block */
            let s = "panic!(\"in string\")";
            let r = r#"unwrap() raw"#;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|t| t.tok == Tok::Lifetime));
        assert!(toks.iter().any(|t| t.tok == Tok::Char));
    }

    #[test]
    fn ranges_are_not_floats() {
        let (toks, _) = lex("for i in 0..5 { a[i]; } let f = 1.5;");
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2, "0..5 keeps both range dots");
    }

    #[test]
    fn directive_with_reason_parses() {
        let (_, ds) = lex("x(); // ow-lint: allow(recovery-panic) -- bounds checked above\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].allows, vec!["recovery-panic".to_string()]);
        assert_eq!(ds[0].reason.as_deref(), Some("bounds checked above"));
    }

    #[test]
    fn directive_without_reason_parses_as_missing_reason() {
        let (_, ds) = lex("// ow-lint: allow(untrusted-read)\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].reason, None);
    }

    #[test]
    fn multi_rule_directive() {
        let (_, ds) = lex("// ow-lint: allow(recovery-panic, untrusted-read) -- both\n");
        assert_eq!(ds[0].allows.len(), 2);
    }

    #[test]
    fn line_numbers_track_strings_and_comments() {
        let src = "line1();\n\"two\nthree\"\nfour();\n";
        let (toks, _) = lex(src);
        let four = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("four".into()))
            .unwrap();
        assert_eq!(four.line, 4);
    }
}
