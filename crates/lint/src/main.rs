//! CLI for ow-lint. Usage:
//!
//! ```text
//! ow-lint [--root DIR] [--deny] [--json]
//! ow-lint [--root DIR] --effects <function>
//! ```
//!
//! `--deny` exits 1 when any finding survives (the CI gate); `--json`
//! prints the machine-readable report for trend tracking. `--effects`
//! prints the interprocedural effect summary of a function (by bare name
//! or `Type::name`) with one witness path per effect — the debugging aid
//! for justifying allows. Exit 2 means the lint itself failed (unreadable
//! workspace or unknown function), never a finding.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut effects_fn: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("ow-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--deny" => deny = true,
            "--json" => json = true,
            "--effects" => match args.next() {
                Some(f) => effects_fn = Some(f),
                None => {
                    eprintln!("ow-lint: --effects needs a function name");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ow-lint [--root DIR] [--deny] [--json] [--effects FN]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ow-lint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = ow_lint::Config::workspace(&root);
    if let Some(f) = effects_fn {
        return match ow_lint::effects_of(&cfg, &f) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ow-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let report = match ow_lint::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ow-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            let func = if f.function.is_empty() {
                String::new()
            } else {
                format!(" (fn {})", f.function)
            };
            println!("{}: {}:{}{}: {}", f.rule, f.file, f.line, func, f.message);
            if f.via.len() > 1 {
                println!("    via {}", f.via.join(" -> "));
            }
        }
        println!(
            "ow-lint: {} finding(s), {} file(s) scanned, {} allow(s) in use",
            report.findings.len(),
            report.scanned_files,
            report.allows_used
        );
    }
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
