//! Per-function extraction: walks the token stream of one file and builds
//! a model of every function — its qualified name, the calls it makes, the
//! panic-capable sites it contains, its raw `PhysMem` reads and writes,
//! its `kheap` allocations, and its nondeterminism sites (wall clock,
//! environment, thread identity, `HashMap`/`HashSet` iteration, raw-seed
//! RNG construction). These per-function facts are the *intrinsic* effects
//! the [`crate::effects`] fixpoint propagates over the call graph.
//!
//! Resolution is name-based and deliberately over-approximate (a method
//! call `.foo(` may match several `impl` blocks); the call-graph layer
//! resolves against workspace definitions only, so `std` names fall away.

use crate::lexer::{Directive, Tok, Token};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a free function.
    Free,
    /// `x.foo(...)` — a method; `receiver` is the identifier immediately
    /// before the dot, when there is one (`x.y.foo()` yields `y`).
    Method {
        /// Last identifier of the receiver chain, if lexically evident.
        receiver: Option<String>,
    },
    /// `A::foo(...)` — qualified; `qualifier` is the segment before `::`.
    Qualified {
        /// Path segment immediately before the final `::`.
        qualifier: String,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (final path segment).
    pub name: String,
    /// Call flavor, for resolution.
    pub kind: CallKind,
    /// 1-based line.
    pub line: u32,
    /// True when the call happens inside a `contain(...)` argument — the
    /// supervisor's runtime panic-containment boundary.
    pub contained: bool,
    /// True when the first argument is a closure (`|..|` / `move |..|`).
    /// A closure-taking method on an *unknown* receiver is almost always a
    /// std iterator/`Option`/`Result` adapter (`.map`, `.filter`, …), so
    /// resolution skips it instead of matching same-named workspace
    /// methods; the closure body's own calls are still attributed to the
    /// caller, so nothing inside the closure is lost.
    pub closure_arg: bool,
}

/// Why a site can panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.unwrap_err()`.
    Unwrap,
    /// `.expect(..)` / `.expect_err(..)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
    /// `assert*!` (the name is kept for the report).
    Macro(String),
    /// `expr[index]` — slice/array indexing, which panics out of bounds.
    Indexing,
}

/// One potentially panicking site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What kind of panic this is.
    pub kind: PanicKind,
    /// 1-based line.
    pub line: u32,
    /// Inside a `contain(...)` argument (runtime-contained, so exempt).
    pub contained: bool,
}

/// Why a site is nondeterministic (rule 8 / the `nondeterministic` effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetKind {
    /// `Instant::now` / `SystemTime::now` — wall-clock time.
    Time,
    /// `env::var` / `env::var_os` — process environment.
    Env,
    /// `thread::current` / `available_parallelism` — host topology.
    Thread,
    /// Iteration over a `HashMap`/`HashSet` — unordered by design.
    MapIter,
    /// `SimRng` built from a seed that does not derive via the
    /// `stream_seed`/`experiment_seed` family.
    RawSeed,
}

/// One nondeterministic site.
#[derive(Debug, Clone)]
pub struct NondetSite {
    /// Why the site is nondeterministic.
    pub kind: NondetKind,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of what was matched.
    pub what: String,
}

/// One extracted function.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` context (last path segment of the self type), if any.
    pub ctx: Option<String>,
    /// Whether the context was a `trait` block (so the body is a default
    /// method usable by every implementor).
    pub ctx_is_trait: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// All call sites.
    pub calls: Vec<Call>,
    /// All panic-capable sites.
    pub panics: Vec<PanicSite>,
    /// `phys.read*`/`phys.slice*` sites: (line, method name).
    pub taint_reads: Vec<(u32, String)>,
    /// `phys.write*`/`phys.slice_mut`/frame-store sites: (line, method).
    pub taint_writes: Vec<(u32, String)>,
    /// `kheap.alloc`/`kheap.free`/`KHeap::…` sites: (line, description).
    pub kheap_allocs: Vec<(u32, String)>,
    /// Nondeterministic sites (time, env, thread, map iteration, raw-seed
    /// RNG construction).
    pub nondet: Vec<NondetSite>,
    /// Defined inside a `#[cfg(test)]` region (or a tests/ file).
    pub in_test: bool,
    /// Locally inferred binding types: `(name, type last segment)` from
    /// parameter annotations, `let x: T`, and `let x = T::ctor(...)` /
    /// `let x = T { ... }`. Used to disambiguate method-call receivers.
    pub types: Vec<(String, String)>,
}

/// A whole-file record-codec fact: `impl Record for X` at some line.
#[derive(Debug, Clone)]
pub struct RecordImpl {
    /// The implementing type's name.
    pub type_name: String,
    /// 1-based line of the `impl`.
    pub line: u32,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Functions defined in the file (test functions included, flagged).
    pub fns: Vec<FnDef>,
    /// `impl Record for X` sites.
    pub record_impls: Vec<RecordImpl>,
    /// Escape-hatch directives.
    pub directives: Vec<Directive>,
    /// Every string literal in the file with its 1-based line (for
    /// registry/sample matching).
    pub strings: Vec<(String, u32)>,
    /// `reg!(X)` macro argument names (layout-registry entries).
    pub reg_macro_args: Vec<String>,
    /// `crash_point!("label")` call sites outside test code: (label, line).
    pub crash_point_labels: Vec<(String, u32)>,
    /// Identifiers annotated `: HashMap<…>` / `: HashSet<…>` anywhere in
    /// the file (struct fields and bindings alike) — iteration over them
    /// is order-nondeterministic.
    pub map_typed: Vec<String>,
}

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

const PHYS_READ_METHODS: &[&str] = &[
    "read",
    "read_u8",
    "read_u16",
    "read_u32",
    "read_u64",
    "slice",
    "slice_mut",
];

const PHYS_WRITE_METHODS: &[&str] = &[
    "write",
    "write_u8",
    "write_u16",
    "write_u32",
    "write_u64",
    "slice_mut",
    "zero_frame",
    "copy_frame",
    "corrupt_u64",
];

/// Method names whose invocation observes a `HashMap`/`HashSet`'s
/// unordered internal layout.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Identifier names that mark a seed expression as *derived* — flowing
/// through the splitmix-based stream/experiment seed family (or any
/// binding whose name says it carries a seed).
fn is_seed_derived_ident(s: &str) -> bool {
    s.contains("seed") || s == "mix64"
}

/// Keywords that can precede `[` without the bracket being an index
/// expression, and that are never call names.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// Extracts the model of one lexed file. `force_test` marks every function
/// as test code (used for files under `tests/`, `benches/`, `examples/`).
pub fn extract(toks: &[Token], directives: Vec<Directive>, force_test: bool) -> FileModel {
    let mut model = FileModel {
        directives,
        ..FileModel::default()
    };
    for t in toks {
        if let Tok::Str(s) = &t.tok {
            model.strings.push((s.clone(), t.line));
        }
    }
    collect_reg_macros(toks, &mut model);
    collect_map_typed(toks, &mut model);
    let map_typed = model.map_typed.clone();
    let test_spans = if force_test {
        vec![(0, toks.len())]
    } else {
        cfg_test_spans(toks)
    };
    collect_crash_points(toks, &test_spans, &mut model);

    // Context stack: (brace depth when the block opened, name, is_trait).
    let mut ctx: Vec<(i32, String, bool)> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while matches!(ctx.last(), Some((d, _, _)) if *d >= depth + 1) {
                    ctx.pop();
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let is_trait = kw == "trait";
                if let Some((name, trait_name, body_open)) = parse_block_header(toks, i, is_trait) {
                    if let (Some(tn), false) = (&trait_name, is_trait) {
                        if tn == "Record" {
                            model.record_impls.push(RecordImpl {
                                type_name: name.clone(),
                                line: toks[i].line,
                            });
                        }
                    }
                    ctx.push((depth + 1, name, is_trait));
                    depth += 1;
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let in_test = force_test || test_spans.iter().any(|&(a, b)| i >= a && i < b);
                let (def, next) = parse_fn(toks, i, &ctx, in_test, &map_typed);
                if let Some(d) = def {
                    model.fns.push(d);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    model
}

/// Finds `reg!(Name)` macro invocations.
fn collect_reg_macros(toks: &[Token], model: &mut FileModel) {
    for w in toks.windows(4) {
        if ident(&w[0]) == Some("reg") && punct(&w[1], '!') && punct(&w[2], '(') {
            if let Some(name) = ident(&w[3]) {
                model.reg_macro_args.push(name.to_string());
            }
        }
    }
}

/// Finds `name: HashMap<…>` / `name: HashSet<…>` annotations anywhere in
/// the file — struct fields and `let`/parameter bindings look identical
/// lexically, and either makes later iteration over `name` unordered.
fn collect_map_typed(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let is_annot = ident(&toks[i]).is_some_and(|s| !is_keyword(s))
            && punct(&toks[i + 1], ':')
            && !punct(&toks[i + 2], ':');
        if is_annot {
            let name = ident(&toks[i]).unwrap_or_default().to_string();
            let mut j = i + 2;
            if let Some(t) = read_type(toks, &mut j) {
                if (t == "HashMap" || t == "HashSet") && !model.map_typed.contains(&name) {
                    model.map_typed.push(name);
                }
            }
            i += 1;
        } else {
            i += 1;
        }
    }
}

/// Finds `crash_point!("label")` invocations, skipping test code (tests
/// arm synthetic labels that are not part of the shipped registry).
fn collect_crash_points(toks: &[Token], test_spans: &[(usize, usize)], model: &mut FileModel) {
    for (i, w) in toks.windows(4).enumerate() {
        if ident(&w[0]) == Some("crash_point") && punct(&w[1], '!') && punct(&w[2], '(') {
            if let Tok::Str(label) = &w[3].tok {
                if !test_spans.iter().any(|&(a, b)| i >= a && i < b) {
                    model.crash_point_labels.push((label.clone(), w[3].line));
                }
            }
        }
    }
}

/// Token spans covered by `#[cfg(test)]` + following item (module or fn).
fn cfg_test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = punct(&toks[i], '#')
            && punct(&toks[i + 1], '[')
            && ident(&toks[i + 2]) == Some("cfg")
            && punct(&toks[i + 3], '(')
            && ident(&toks[i + 4]) == Some("test")
            && punct(&toks[i + 5], ')')
            && punct(&toks[i + 6], ']');
        if is_cfg_test {
            // The guarded item runs to its matching close brace.
            let mut j = i + 7;
            let mut d = 0i32;
            let mut opened = false;
            while j < toks.len() {
                if punct(&toks[j], '{') {
                    d += 1;
                    opened = true;
                } else if punct(&toks[j], '}') {
                    d -= 1;
                    if opened && d == 0 {
                        break;
                    }
                } else if punct(&toks[j], ';') && !opened {
                    break;
                }
                j += 1;
            }
            spans.push((i, (j + 1).min(toks.len())));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Parses an `impl`/`trait` block header starting at `start` (the keyword).
/// Returns (context type name, implemented trait name, index of the `{`).
fn parse_block_header(
    toks: &[Token],
    start: usize,
    is_trait: bool,
) -> Option<(String, Option<String>, usize)> {
    let mut i = start + 1;
    // Skip generic parameters after the keyword.
    i = skip_generics(toks, i);
    let first = read_path_last_segment(toks, &mut i)?;
    if is_trait {
        let open = find_body_open(toks, i)?;
        return Some((first, None, open));
    }
    // `impl Trait for Type {` or `impl Type {`.
    let mut trait_name = None;
    let mut type_name = first;
    if ident(toks.get(i)?) == Some("for") {
        i += 1;
        let second = read_path_last_segment(toks, &mut i)?;
        trait_name = Some(type_name);
        type_name = second;
    }
    let open = find_body_open(toks, i)?;
    Some((type_name, trait_name, open))
}

/// Skips a balanced `<...>` group if one starts at `i`.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    if toks.get(i).map(|t| punct(t, '<')) != Some(true) {
        return i;
    }
    let mut d = 0i32;
    while i < toks.len() {
        if punct(&toks[i], '<') {
            d += 1;
        } else if punct(&toks[i], '>') {
            d -= 1;
            if d == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Reads a (possibly generic) path and returns its final segment,
/// advancing `i` past it. `&mut PhysMem` style sigils are skipped first.
fn read_path_last_segment(toks: &[Token], i: &mut usize) -> Option<String> {
    while matches!(toks.get(*i)?.tok, Tok::Punct('&') | Tok::Punct('\'')) {
        *i += 1;
    }
    if matches!(&toks.get(*i)?.tok, Tok::Lifetime) {
        *i += 1;
    }
    if ident(toks.get(*i)?) == Some("mut") {
        *i += 1;
    }
    let mut last;
    loop {
        let seg = ident(toks.get(*i)?)?.to_string();
        *i += 1;
        *i = skip_generics(toks, *i);
        last = Some(seg);
        // Continue through `::`.
        if punct(toks.get(*i)?, ':') && toks.get(*i + 1).map(|t| punct(t, ':')) == Some(true) {
            *i += 2;
        } else {
            break;
        }
    }
    last
}

/// Finds the `{` opening the block body, skipping a `where` clause.
fn find_body_open(toks: &[Token], mut i: usize) -> Option<usize> {
    let mut angle = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') if angle <= 0 => return Some(i),
            Tok::Punct(';') if angle <= 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses one `fn` item starting at the `fn` keyword; returns the model
/// (None for a bodiless trait-method declaration) and the index to resume
/// scanning at — the token *after* the signature, so nested items inside
/// the body are found by the main loop… except we fully consume the body
/// here to collect sites, so resumption is after the body instead; nested
/// `fn` items are extracted recursively below.
fn parse_fn(
    toks: &[Token],
    start: usize,
    ctx: &[(i32, String, bool)],
    in_test: bool,
    map_typed: &[String],
) -> (Option<FnDef>, usize) {
    let name = match toks.get(start + 1).and_then(ident) {
        Some(n) => n.to_string(),
        None => return (None, start + 1),
    };
    // Locate the body `{` (or `;` for a bodiless declaration): scan past
    // the signature with paren/angle balancing.
    let mut i = start + 2;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut body_open = None;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct('<') if paren == 0 => angle += 1,
            Tok::Punct('>') if paren == 0 => {
                // `->` return arrow: the `>` pairs with a `-`, not a `<`.
                let is_arrow = i > 0 && punct(&toks[i - 1], '-');
                if !is_arrow {
                    angle -= 1;
                }
            }
            Tok::Punct('{') if paren == 0 && angle <= 0 => {
                body_open = Some(i);
                break;
            }
            Tok::Punct(';') if paren == 0 && angle <= 0 => {
                return (None, i + 1);
            }
            _ => {}
        }
        i += 1;
    }
    let Some(open) = body_open else {
        return (None, i);
    };
    // Body extent by brace matching.
    let mut d = 0i32;
    let mut j = open;
    while j < toks.len() {
        if punct(&toks[j], '{') {
            d += 1;
        } else if punct(&toks[j], '}') {
            d -= 1;
            if d == 0 {
                break;
            }
        }
        j += 1;
    }
    let body = &toks[open + 1..j.min(toks.len())];
    let (ctx_name, ctx_is_trait) = match ctx.last() {
        Some((_, n, t)) => (Some(n.clone()), *t),
        None => (None, false),
    };
    let mut types = Vec::new();
    collect_param_types(toks, start + 2, open, &mut types);
    collect_let_types(body, &mut types);
    let mut def = FnDef {
        name,
        ctx: ctx_name,
        ctx_is_trait,
        line: toks[start].line,
        calls: Vec::new(),
        panics: Vec::new(),
        taint_reads: Vec::new(),
        taint_writes: Vec::new(),
        kheap_allocs: Vec::new(),
        nondet: Vec::new(),
        in_test,
        types,
    };
    collect_sites(body, &mut def, map_typed);
    (Some(def), j + 1)
}

/// Reads a type's last path segment, skipping reference/mutability sigils
/// and `dyn`/`impl` prefixes.
fn read_type(toks: &[Token], i: &mut usize) -> Option<String> {
    loop {
        match toks.get(*i).map(|t| &t.tok) {
            Some(Tok::Punct('&')) | Some(Tok::Lifetime) => *i += 1,
            Some(Tok::Ident(s)) if s == "mut" || s == "dyn" || s == "impl" => *i += 1,
            _ => break,
        }
    }
    read_path_last_segment(toks, i)
}

/// Harvests `name: Type` parameter annotations from the signature span.
fn collect_param_types(toks: &[Token], from: usize, to: usize, out: &mut Vec<(String, String)>) {
    let mut i = from;
    while i < to {
        let is_annot = ident(&toks[i]).is_some_and(|s| !is_keyword(s))
            && toks.get(i + 1).map(|t| punct(t, ':')) == Some(true)
            && toks.get(i + 2).map(|t| punct(t, ':')) != Some(true);
        if is_annot {
            let name = ident(&toks[i]).unwrap_or_default().to_string();
            let mut j = i + 2;
            if let Some(t) = read_type(toks, &mut j) {
                out.push((name, t));
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
}

/// Harvests `let x: T` and `let x = T::ctor(...)` / `let x = T { .. }`
/// binding types from a function body.
fn collect_let_types(body: &[Token], out: &mut Vec<(String, String)>) {
    let mut i = 0usize;
    while i < body.len() {
        if ident(&body[i]) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if body.get(j).and_then(ident) == Some("mut") {
            j += 1;
        }
        let Some(name) = body.get(j).and_then(ident).map(str::to_string) else {
            i = j;
            continue;
        };
        let j2 = j + 1;
        match body.get(j2).map(|t| &t.tok) {
            Some(Tok::Punct(':')) if body.get(j2 + 1).map(|t| punct(t, ':')) != Some(true) => {
                let mut k = j2 + 1;
                if let Some(t) = read_type(body, &mut k) {
                    out.push((name, t));
                }
                i = k.max(j2 + 1);
            }
            Some(Tok::Punct('=')) => {
                let mut k = j2 + 1;
                while matches!(body.get(k).map(|t| &t.tok), Some(Tok::Punct('&')))
                    || body.get(k).and_then(ident) == Some("mut")
                {
                    k += 1;
                }
                let mut segs: Vec<String> = Vec::new();
                while let Some(s) = body.get(k).and_then(ident) {
                    if is_keyword(s) {
                        break;
                    }
                    segs.push(s.to_string());
                    k += 1;
                    k = skip_generics(body, k);
                    let colons = body.get(k).map(|t| punct(t, ':')) == Some(true)
                        && body.get(k + 1).map(|t| punct(t, ':')) == Some(true);
                    if colons {
                        k += 2;
                    } else {
                        break;
                    }
                }
                let ty = match body.get(k).map(|t| &t.tok) {
                    // `Type::ctor(` — the type is the segment before the fn.
                    Some(Tok::Punct('(')) if segs.len() >= 2 => Some(segs[segs.len() - 2].clone()),
                    // `Type { .. }` struct literal.
                    Some(Tok::Punct('{')) if !segs.is_empty() => Some(segs[segs.len() - 1].clone()),
                    _ => None,
                };
                if let Some(t) = ty {
                    out.push((name, t));
                }
                i = k.max(j2 + 1);
            }
            _ => i = j2,
        }
    }
}

/// Whether the receiver name `r` is known (file-wide annotation or local
/// binding inference) to be a `HashMap`/`HashSet`.
fn receiver_is_map(r: &str, def: &FnDef, map_typed: &[String]) -> bool {
    if let Some((_, t)) = def.types.iter().rev().find(|(n, _)| n == r) {
        return t == "HashMap" || t == "HashSet";
    }
    map_typed.iter().any(|m| m == r)
}

/// Scans forward from the token *after* a call's `(` and reports whether
/// the argument list (to the matching close paren) mentions an identifier
/// from the seed-derivation family.
fn args_derive_seed(body: &[Token], open: usize) -> bool {
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < body.len() && depth > 0 {
        match &body[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Ident(s) if is_seed_derived_ident(s) => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Walks a function body and records calls, panic sites, taint reads and
/// writes, kheap allocations, and nondeterminism sites. Regions inside
/// `contain(...)` arguments are flagged.
fn collect_sites(body: &[Token], def: &mut FnDef, map_typed: &[String]) {
    let mut paren_depth = 0i32;
    // Paren depths at which a `contain(` argument list is open.
    let mut contain_stack: Vec<i32> = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        let contained = !contain_stack.is_empty();
        match &t.tok {
            Tok::Punct('(') => {
                paren_depth += 1;
            }
            Tok::Punct(')') => {
                if contain_stack.last() == Some(&paren_depth) {
                    contain_stack.pop();
                }
                paren_depth -= 1;
            }
            Tok::Ident(kw) if kw == "in" => {
                // `for … in <expr> {`: iteration over a plain (possibly
                // referenced, possibly dotted) path whose final identifier
                // is map-typed observes unordered layout. Method-call
                // iteration (`m.keys()`) is caught by the call arm below.
                let mut j = i + 1;
                while matches!(body.get(j).map(|t| &t.tok), Some(Tok::Punct('&')))
                    || body.get(j).and_then(ident) == Some("mut")
                {
                    j += 1;
                }
                let mut last: Option<&str> = None;
                while let Some(s) = body.get(j).and_then(ident) {
                    if is_keyword(s) {
                        last = None;
                        break;
                    }
                    last = Some(s);
                    if body.get(j + 1).map(|t| punct(t, '.')) == Some(true) {
                        j += 2;
                    } else {
                        j += 1;
                        break;
                    }
                }
                let ends_body = body.get(j).map(|t| punct(t, '{')) == Some(true);
                if let (Some(r), true) = (last, ends_body) {
                    if receiver_is_map(r, def, map_typed) {
                        def.nondet.push(NondetSite {
                            kind: NondetKind::MapIter,
                            line: t.line,
                            what: format!("iteration over HashMap/HashSet `{r}`"),
                        });
                    }
                }
            }
            Tok::Punct('[') => {
                // Indexing when the previous token can end an expression.
                let is_index = match body.get(i.wrapping_sub(1)).map(|p| &p.tok) {
                    Some(Tok::Ident(s)) => !is_keyword(s),
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Str(_)) => true,
                    _ => false,
                };
                if is_index {
                    def.panics.push(PanicSite {
                        kind: PanicKind::Indexing,
                        line: t.line,
                        contained,
                    });
                }
            }
            Tok::Ident(name) if !is_keyword(name) => {
                let next = body.get(i + 1);
                let next_is = |c: char| next.map(|t| punct(t, c)) == Some(true);
                if next_is('!') {
                    // Macro invocation.
                    if PANIC_MACROS.contains(&name.as_str()) {
                        def.panics.push(PanicSite {
                            kind: PanicKind::Macro(name.clone()),
                            line: t.line,
                            contained,
                        });
                    }
                    i += 2;
                    continue;
                }
                if next_is('(') {
                    let prev = body.get(i.wrapping_sub(1));
                    let prev2 = body.get(i.wrapping_sub(2));
                    let kind = if prev.map(|p| punct(p, '.')) == Some(true) {
                        let receiver = prev2.and_then(ident).map(str::to_string);
                        CallKind::Method { receiver }
                    } else if prev.map(|p| punct(p, ':')) == Some(true)
                        && prev2.map(|p| punct(p, ':')) == Some(true)
                    {
                        let qualifier = body
                            .get(i.wrapping_sub(3))
                            .and_then(ident)
                            .unwrap_or("")
                            .to_string();
                        CallKind::Qualified { qualifier }
                    } else {
                        CallKind::Free
                    };
                    let closure_arg = match body.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Punct('|')) => true,
                        Some(Tok::Ident(s)) if s == "move" => {
                            body.get(i + 3).map(|t| punct(t, '|')) == Some(true)
                        }
                        _ => false,
                    };
                    collect_nondet_call(def, name, &kind, body, i, map_typed, t.line);
                    record_call(def, name, kind, t.line, contained, closure_arg);
                    if name == "contain" {
                        // The argument list opens at depth+1; everything
                        // until it closes is runtime-contained.
                        contain_stack.push(paren_depth + 1);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Detects nondeterministic call sites: wall-clock reads, environment
/// reads, thread-topology queries, `HashMap`/`HashSet` iteration, and
/// `SimRng` construction from a seed that does not derive through the
/// `stream_seed`/`experiment_seed` family. `i` indexes the callee name in
/// `body` (the `(` sits at `i + 1`).
fn collect_nondet_call(
    def: &mut FnDef,
    name: &str,
    kind: &CallKind,
    body: &[Token],
    i: usize,
    map_typed: &[String],
    line: u32,
) {
    let site = if name == "available_parallelism" {
        Some((
            NondetKind::Thread,
            "thread::available_parallelism()".to_string(),
        ))
    } else {
        match kind {
            CallKind::Qualified { qualifier } => match (qualifier.as_str(), name) {
                ("Instant", "now") | ("SystemTime", "now") => {
                    Some((NondetKind::Time, format!("{qualifier}::now()")))
                }
                ("env", "var") | ("env", "var_os") => {
                    Some((NondetKind::Env, format!("env::{name}()")))
                }
                ("thread", "current") => {
                    Some((NondetKind::Thread, "thread::current()".to_string()))
                }
                ("SimRng", "seed_from_u64") | ("SimRng", "new")
                    if !args_derive_seed(body, i + 1) =>
                {
                    Some((
                        NondetKind::RawSeed,
                        format!("SimRng::{name} with a raw (underived) seed"),
                    ))
                }
                _ => None,
            },
            CallKind::Method { receiver } => receiver
                .as_deref()
                .filter(|r| MAP_ITER_METHODS.contains(&name) && receiver_is_map(r, def, map_typed))
                .map(|r| {
                    (
                        NondetKind::MapIter,
                        format!("HashMap/HashSet `{r}`.{name}()"),
                    )
                }),
            CallKind::Free => None,
        }
    };
    if let Some((kind, what)) = site {
        def.nondet.push(NondetSite { kind, line, what });
    }
}

/// Classifies and records a single call site on `def`.
fn record_call(
    def: &mut FnDef,
    name: &str,
    kind: CallKind,
    line: u32,
    contained: bool,
    closure_arg: bool,
) {
    if let CallKind::Method { receiver } = &kind {
        if PANIC_METHODS.contains(&name) {
            def.panics.push(PanicSite {
                kind: if name.starts_with("unwrap") {
                    PanicKind::Unwrap
                } else {
                    PanicKind::Expect
                },
                line,
                contained,
            });
            return;
        }
        if receiver.as_deref() == Some("phys") {
            if PHYS_READ_METHODS.contains(&name) {
                def.taint_reads.push((line, name.to_string()));
            }
            if PHYS_WRITE_METHODS.contains(&name) {
                def.taint_writes.push((line, name.to_string()));
            }
        }
        if receiver.as_deref() == Some("kheap") && (name == "alloc" || name == "free") {
            def.kheap_allocs.push((line, format!("kheap.{name}")));
        }
    }
    if let CallKind::Qualified { qualifier } = &kind {
        if qualifier == "KHeap" {
            def.kheap_allocs.push((line, format!("KHeap::{name}")));
        }
    }
    def.calls.push(Call {
        name: name.to_string(),
        kind,
        line,
        contained,
        closure_arg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        let (toks, ds) = lex(src);
        extract(&toks, ds, false)
    }

    #[test]
    fn free_method_and_qualified_calls() {
        let m = model("fn f() { g(); x.h(); A::B::k(); }");
        let f = &m.fns[0];
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g", "h", "k"]);
        assert_eq!(
            f.calls[2].kind,
            CallKind::Qualified {
                qualifier: "B".into()
            }
        );
    }

    #[test]
    fn impl_context_qualifies_methods() {
        let m = model("impl Foo { fn bar(&self) {} }\ntrait T { fn d(&self) { self.e(); } }");
        assert_eq!(m.fns[0].ctx.as_deref(), Some("Foo"));
        assert!(!m.fns[0].ctx_is_trait);
        assert_eq!(m.fns[1].ctx.as_deref(), Some("T"));
        assert!(m.fns[1].ctx_is_trait);
    }

    #[test]
    fn record_impls_are_found() {
        let m = model("impl Record for ProcDesc { fn x() {} }\nimpl Clone for Y {}");
        assert_eq!(m.record_impls.len(), 1);
        assert_eq!(m.record_impls[0].type_name, "ProcDesc");
    }

    #[test]
    fn panic_sites_classified() {
        let m = model(
            "fn f(v: &[u8]) { v.first().unwrap(); v.get(0).expect(\"x\"); panic!(\"y\"); v[0]; }",
        );
        let kinds: Vec<&PanicKind> = m.fns[0].panics.iter().map(|p| &p.kind).collect();
        assert_eq!(kinds.len(), 4);
        assert!(matches!(kinds[0], PanicKind::Unwrap));
        assert!(matches!(kinds[1], PanicKind::Expect));
        assert!(matches!(kinds[2], PanicKind::Macro(m) if m == "panic"));
        assert!(matches!(kinds[3], PanicKind::Indexing));
    }

    #[test]
    fn debug_assert_is_not_a_panic_site() {
        let m = model("fn f() { debug_assert!(true); debug_assert_eq!(1, 1); }");
        assert!(m.fns[0].panics.is_empty());
    }

    #[test]
    fn array_literals_and_attributes_are_not_indexing() {
        let m = model("#[derive(Debug)]\nfn f() { let a = [0u8; 4]; let b: [u8; 2] = [1, 2]; }");
        assert!(m.fns[0].panics.is_empty());
    }

    #[test]
    fn slicing_counts_as_indexing() {
        let m = model("fn f(b: &[u8]) { let _ = &b[..4]; }");
        assert_eq!(m.fns[0].panics.len(), 1);
        assert!(matches!(m.fns[0].panics[0].kind, PanicKind::Indexing));
    }

    #[test]
    fn contain_region_exempts_sites_and_calls() {
        let m = model("fn f() { contain(|| { x.unwrap(); inner(); }); outer(); y.unwrap(); }");
        let f = &m.fns[0];
        let contained_panics: Vec<bool> = f.panics.iter().map(|p| p.contained).collect();
        assert_eq!(contained_panics, vec![true, false]);
        let inner = f.calls.iter().find(|c| c.name == "inner").unwrap();
        assert!(inner.contained);
        let outer = f.calls.iter().find(|c| c.name == "outer").unwrap();
        assert!(!outer.contained);
    }

    #[test]
    fn cfg_test_functions_are_flagged() {
        let m =
            model("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n");
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }

    #[test]
    fn phys_reads_and_kheap_allocs_are_recorded() {
        let m =
            model("fn f(k: &K) { k.machine.phys.read_u32(0); phys.read(a, b); k.kheap.alloc(8); }");
        let f = &m.fns[0];
        assert_eq!(f.taint_reads.len(), 2);
        assert_eq!(f.kheap_allocs.len(), 1);
    }

    #[test]
    fn receiver_is_last_chain_ident() {
        let m = model("fn f() { a.b.phys.read(0, x); }");
        assert_eq!(m.fns[0].taint_reads.len(), 1);
    }

    #[test]
    fn binding_types_are_inferred() {
        let m = model(
            "fn f(phys: &mut PhysMem, n: u64) { let g = ChainGuard::new(4); \
             let d: ProcDesc = x; let h = HandoffBlock { a: 1 }; }",
        );
        let ty = |n: &str| {
            m.fns[0]
                .types
                .iter()
                .find(|(k, _)| k == n)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(ty("phys"), Some("PhysMem"));
        assert_eq!(ty("g"), Some("ChainGuard"));
        assert_eq!(ty("d"), Some("ProcDesc"));
        assert_eq!(ty("h"), Some("HandoffBlock"));
    }

    #[test]
    fn reg_macro_args_collected() {
        let m = model("static R: &[E] = &[reg!(HandoffBlock), reg!(ProcDesc)];");
        assert_eq!(m.reg_macro_args, vec!["HandoffBlock", "ProcDesc"]);
    }

    #[test]
    fn crash_point_labels_collected_with_lines() {
        let m = model(
            "fn f() {\n    ow_crashpoint::crash_point!(\"kernel.swap.slot.write\");\n}\n\
             fn g() { crash_point!(\"recovery.reader.vma.walk\"); }",
        );
        assert_eq!(
            m.crash_point_labels,
            vec![
                ("kernel.swap.slot.write".to_string(), 2),
                ("recovery.reader.vma.walk".to_string(), 4),
            ]
        );
    }

    #[test]
    fn crash_point_labels_in_test_code_are_skipped() {
        let m = model(
            "#[cfg(test)]\nmod tests {\n    fn t() { crash_point!(\"synthetic.test.label\"); }\n}",
        );
        assert!(m.crash_point_labels.is_empty());
    }

    #[test]
    fn phys_writes_are_recorded() {
        let m = model(
            "fn f(k: &mut K) { k.machine.phys.write_u8(0, 1); phys.write(a, b); \
             phys.zero_frame(3); phys.read(a, c); }",
        );
        let f = &m.fns[0];
        assert_eq!(f.taint_writes.len(), 3);
        assert_eq!(f.taint_reads.len(), 1);
    }

    #[test]
    fn time_env_thread_sites_are_nondet() {
        let m = model(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
             let j = std::env::var(\"X\"); let c = thread::current(); \
             let p = std::thread::available_parallelism(); }",
        );
        let kinds: Vec<NondetKind> = m.fns[0].nondet.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                NondetKind::Time,
                NondetKind::Time,
                NondetKind::Env,
                NondetKind::Thread,
                NondetKind::Thread,
            ]
        );
    }

    #[test]
    fn raw_seed_rng_is_nondet_but_derived_is_not() {
        let m = model(
            "fn f(seed: u64) { let a = SimRng::seed_from_u64(42); \
             let b = SimRng::seed_from_u64(stream_seed(seed, 1)); \
             let c = SimRng::seed_from_u64(experiment_seed); \
             let d = SimRng::seed_from_u64(cell_seed); }",
        );
        let raw: Vec<&NondetSite> = m.fns[0]
            .nondet
            .iter()
            .filter(|s| s.kind == NondetKind::RawSeed)
            .collect();
        assert_eq!(raw.len(), 1, "only the literal 42 is underived");
        assert_eq!(raw[0].line, 1);
    }

    #[test]
    fn map_iteration_is_nondet_via_annotation_and_inference() {
        let m = model(
            "struct S { map: HashMap<u64, u64> }\n\
             fn f(s: &S) { for (k, v) in &s.map { use_kv(k, v); } }\n\
             fn g() { let m: HashMap<u64, u64> = HashMap::new(); m.keys(); }\n\
             fn h() { let b: BTreeMap<u64, u64> = BTreeMap::new(); for x in &b {} b.keys(); }",
        );
        assert_eq!(m.map_typed, vec!["map".to_string(), "m".to_string()]);
        assert_eq!(m.fns[0].nondet.len(), 1, "for-in over a HashMap field");
        assert_eq!(m.fns[1].nondet.len(), 1, "keys() on an inferred HashMap");
        assert!(m.fns[2].nondet.is_empty(), "BTreeMap iteration is ordered");
    }

    #[test]
    fn map_lookup_is_not_nondet() {
        let m = model(
            "fn f() { let m: HashMap<u64, u64> = HashMap::new(); \
             m.get(&1); m.insert(1, 2); m.contains_key(&1); m.len(); }",
        );
        assert!(
            m.fns[0].nondet.is_empty(),
            "point lookups are deterministic"
        );
    }

    #[test]
    fn nested_fn_inside_body_is_not_lost_to_parent() {
        // Nested fns are swallowed by the parent body walk (their sites
        // attach to the parent) — conservative for reachability.
        let m = model("fn outer() { fn inner() { x.unwrap(); } inner(); }");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].panics.len(), 1);
    }
}
