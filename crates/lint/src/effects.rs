//! Interprocedural effect summaries: a fixpoint pass over the call graph.
//!
//! Each function gets a 5-bit summary — the effects its execution *may*
//! have, in the same over-approximate spirit as the graph itself:
//!
//! * [`READS_DEAD`] — reads raw `PhysMem` (dead-kernel or reader-derived
//!   bytes; the `phys.read*`/`phys.slice*` intrinsics).
//! * [`WRITES_LIVE`] — mutates live kernel state through `PhysMem`
//!   (`phys.write*`/`slice_mut`/frame stores).
//! * [`ALLOCATES`] — touches the kernel heap (`kheap.alloc`/`free`).
//! * [`PANICS`] — contains an uncontained panic-capable site.
//! * [`NONDET`] — observes wall clock, environment, thread topology,
//!   `HashMap`/`HashSet` iteration order, or builds a raw-seed RNG.
//!
//! Intrinsic effects come from [`crate::extract`]; the fixpoint unions a
//! callee's summary into every caller until nothing changes. One edge kind
//! is special: a call made inside a `supervisor::contain(...)` argument
//! masks the [`PANICS`] bit (the runtime boundary owns that panic) but
//! still propagates the other four — containment catches unwinding, it
//! does not undo writes, allocations, or nondeterminism.
//!
//! [`Effects::witness`] reconstructs, for any (function, effect) pair, one
//! call path to a concrete intrinsic site — this is what `--effects` and
//! the rule findings print, so justifying an allow never requires reading
//! the fixpoint.

use crate::extract::{FnDef, PanicKind};
use crate::graph::{DefId, Graph};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Reads raw `PhysMem` (dead-kernel/reader-derived bytes).
pub const READS_DEAD: u8 = 1 << 0;
/// Writes live kernel state through `PhysMem`.
pub const WRITES_LIVE: u8 = 1 << 1;
/// Allocates or frees on the kernel heap.
pub const ALLOCATES: u8 = 1 << 2;
/// Contains an uncontained panic-capable site.
pub const PANICS: u8 = 1 << 3;
/// Observes a nondeterministic input.
pub const NONDET: u8 = 1 << 4;

/// Every effect bit with its report name, in display order.
pub const ALL_EFFECTS: [(u8, &str); 5] = [
    (READS_DEAD, "reads-dead-memory"),
    (WRITES_LIVE, "writes-live-state"),
    (ALLOCATES, "allocates"),
    (PANICS, "panics"),
    (NONDET, "nondeterministic"),
];

/// The report name of one effect bit.
pub fn effect_name(bit: u8) -> &'static str {
    ALL_EFFECTS
        .iter()
        .find(|(b, _)| *b == bit)
        .map(|(_, n)| *n)
        .unwrap_or("unknown-effect")
}

/// A function's effect summary — a set of the five effect bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectMask(pub u8);

impl EffectMask {
    /// Whether `bit` is in the set.
    pub fn has(self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    /// Whether the function is effect-free under this lattice.
    pub fn is_pure(self) -> bool {
        self.0 == 0
    }

    /// The names of every effect in the set, in display order.
    pub fn names(self) -> Vec<&'static str> {
        ALL_EFFECTS
            .iter()
            .filter(|(b, _)| self.has(*b))
            .map(|(_, n)| *n)
            .collect()
    }
}

impl fmt::Display for EffectMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "(pure)")
        } else {
            write!(f, "{}", self.names().join(" + "))
        }
    }
}

/// The *intrinsic* (own-body) effects of one function, before propagation.
pub fn intrinsic(def: &FnDef) -> EffectMask {
    let mut m = 0u8;
    if !def.taint_reads.is_empty() {
        m |= READS_DEAD;
    }
    if !def.taint_writes.is_empty() {
        m |= WRITES_LIVE;
    }
    if !def.kheap_allocs.is_empty() {
        m |= ALLOCATES;
    }
    if def.panics.iter().any(|p| !p.contained) {
        m |= PANICS;
    }
    if !def.nondet.is_empty() {
        m |= NONDET;
    }
    EffectMask(m)
}

/// The first intrinsic site of `bit` in `def`: (line, description).
pub fn intrinsic_site(def: &FnDef, bit: u8) -> Option<(u32, String)> {
    match bit {
        READS_DEAD => def
            .taint_reads
            .first()
            .map(|(l, m)| (*l, format!("PhysMem::{m}"))),
        WRITES_LIVE => def
            .taint_writes
            .first()
            .map(|(l, m)| (*l, format!("PhysMem::{m}"))),
        ALLOCATES => def.kheap_allocs.first().map(|(l, w)| (*l, w.clone())),
        PANICS => def.panics.iter().find(|p| !p.contained).map(|p| {
            let what = match &p.kind {
                PanicKind::Unwrap => "unwrap()".to_string(),
                PanicKind::Expect => "expect()".to_string(),
                PanicKind::Macro(m) => format!("{m}!"),
                PanicKind::Indexing => "slice/array indexing".to_string(),
            };
            (p.line, what)
        }),
        NONDET => def.nondet.first().map(|s| (s.line, s.what.clone())),
        _ => None,
    }
}

/// One concrete justification for an effect bit in a summary: the call
/// path from the queried function to an intrinsic site.
#[derive(Debug, Clone)]
pub struct Witness {
    /// `file:fn` hops, starting at the queried function.
    pub path: Vec<String>,
    /// 1-based line of the intrinsic site in the last hop.
    pub line: u32,
    /// What the intrinsic site is.
    pub what: String,
}

/// Fixpoint effect summaries for every definition in a [`Graph`].
pub struct Effects {
    summary: Vec<u8>,
}

impl Effects {
    /// Computes summaries: seed every definition with its intrinsic mask,
    /// then union callee summaries into callers (contained calls mask
    /// [`PANICS`]) until a fixed point.
    pub fn compute(graph: &Graph) -> Effects {
        let ids: Vec<DefId> = graph.all_defs().collect();
        let mut summary: Vec<u8> = ids.iter().map(|&id| intrinsic(graph.def(id)).0).collect();
        // Resolve every call edge once; the fixpoint then only does
        // bit-union sweeps, so termination is bounded by 5 bits × edges.
        let mut edges: Vec<(DefId, DefId, bool)> = Vec::new();
        for &id in &ids {
            let f = graph.def(id);
            for call in &f.calls {
                for target in graph.resolve(call, f) {
                    edges.push((id, target, call.contained));
                }
            }
        }
        loop {
            let mut changed = false;
            for &(caller, callee, contained) in &edges {
                let mut add = summary[callee];
                if contained {
                    add &= !PANICS;
                }
                if summary[caller] | add != summary[caller] {
                    summary[caller] |= add;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Effects { summary }
    }

    /// The computed summary of one definition.
    pub fn of(&self, id: DefId) -> EffectMask {
        EffectMask(self.summary[id])
    }

    /// One shortest call path explaining why `from`'s summary carries
    /// `bit`: BFS through callees whose summaries carry the bit, ending at
    /// the first definition that carries it *intrinsically*. Returns
    /// `None` when the summary doesn't have the bit.
    pub fn witness(&self, graph: &Graph, from: DefId, bit: u8) -> Option<Witness> {
        if !self.of(from).has(bit) {
            return None;
        }
        let mut parent: HashMap<DefId, DefId> = HashMap::new();
        let mut queue: VecDeque<DefId> = VecDeque::new();
        parent.insert(from, from);
        queue.push_back(from);
        while let Some(id) = queue.pop_front() {
            let def = graph.def(id);
            if let Some((line, what)) = intrinsic_site(def, bit) {
                let mut path = Vec::new();
                let mut cur = id;
                loop {
                    let f = graph.def(cur);
                    path.push(format!("{}:{}", graph.file_of(cur), f.name));
                    match parent.get(&cur) {
                        Some(&p) if p != cur => cur = p,
                        _ => break,
                    }
                }
                path.reverse();
                return Some(Witness { path, line, what });
            }
            for call in &def.calls {
                if bit == PANICS && call.contained {
                    continue;
                }
                for target in graph.resolve(call, def) {
                    if !self.of(target).has(bit) {
                        continue;
                    }
                    if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(target) {
                        e.insert(id);
                        queue.push_back(target);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::graph::FileEntry;
    use crate::lexer::lex;

    fn entry(path: &str, src: &str) -> FileEntry {
        let (toks, ds) = lex(src);
        FileEntry {
            path: path.to_string(),
            model: extract(&toks, ds, false),
        }
    }

    fn id_of(g: &Graph, name: &str) -> DefId {
        g.all_defs().find(|&id| g.def(id).name == name).unwrap()
    }

    #[test]
    fn intrinsic_effects_seed_the_lattice() {
        let files = vec![entry(
            "a.rs",
            "fn f() { phys.read(0, b); phys.write(0, b); kheap.alloc(8); \
             x.unwrap(); let t = Instant::now(); }",
        )];
        let g = Graph::build(&files);
        let eff = Effects::compute(&g);
        let m = eff.of(id_of(&g, "f"));
        assert!(m.has(READS_DEAD));
        assert!(m.has(WRITES_LIVE));
        assert!(m.has(ALLOCATES));
        assert!(m.has(PANICS));
        assert!(m.has(NONDET));
        assert_eq!(
            m.names(),
            vec![
                "reads-dead-memory",
                "writes-live-state",
                "allocates",
                "panics",
                "nondeterministic"
            ]
        );
    }

    #[test]
    fn effects_propagate_transitively_to_callers() {
        let files = vec![entry(
            "a.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { phys.write_u64(0, 1); }",
        )];
        let g = Graph::build(&files);
        let eff = Effects::compute(&g);
        assert!(eff.of(id_of(&g, "top")).has(WRITES_LIVE));
        assert!(eff.of(id_of(&g, "mid")).has(WRITES_LIVE));
        assert!(!eff.of(id_of(&g, "top")).has(READS_DEAD));
    }

    #[test]
    fn contain_masks_panics_but_not_other_effects() {
        let files = vec![entry(
            "a.rs",
            "fn top() { contain(|| risky()); }\n\
             fn risky() { x.unwrap(); phys.write(0, b); }",
        )];
        let g = Graph::build(&files);
        let eff = Effects::compute(&g);
        let top = eff.of(id_of(&g, "top"));
        assert!(!top.has(PANICS), "contained panic must not propagate");
        assert!(top.has(WRITES_LIVE), "containment does not undo writes");
    }

    #[test]
    fn recursion_reaches_a_fixed_point() {
        let files = vec![entry(
            "a.rs",
            "fn a() { b(); }\nfn b() { a(); let t = SystemTime::now(); }",
        )];
        let g = Graph::build(&files);
        let eff = Effects::compute(&g);
        assert!(eff.of(id_of(&g, "a")).has(NONDET));
        assert!(eff.of(id_of(&g, "b")).has(NONDET));
    }

    #[test]
    fn pure_function_displays_as_pure() {
        let files = vec![entry("a.rs", "fn f(x: u64) -> u64 { x + 1 }")];
        let g = Graph::build(&files);
        let eff = Effects::compute(&g);
        let m = eff.of(id_of(&g, "f"));
        assert!(m.is_pure());
        assert_eq!(format!("{m}"), "(pure)");
    }

    #[test]
    fn witness_path_ends_at_the_intrinsic_site() {
        let files = vec![
            entry("a.rs", "fn top() { mid(); }"),
            entry(
                "b.rs",
                "fn mid() { leaf(); }\nfn leaf() { kheap.alloc(64); }",
            ),
        ];
        let g = Graph::build(&files);
        let eff = Effects::compute(&g);
        let w = eff.witness(&g, id_of(&g, "top"), ALLOCATES).unwrap();
        assert_eq!(w.path, vec!["a.rs:top", "b.rs:mid", "b.rs:leaf"]);
        assert_eq!(w.what, "kheap.alloc");
        assert!(eff.witness(&g, id_of(&g, "top"), READS_DEAD).is_none());
    }
}
