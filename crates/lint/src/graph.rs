//! Workspace-wide call graph: indexes every extracted function, resolves
//! call sites against workspace definitions (names outside the workspace —
//! `std`, core — simply don't resolve and fall away), and computes
//! reachability with per-function witness paths.
//!
//! Resolution is deliberately over-approximate: a method call with an
//! unknown receiver type matches every workspace method of that name. The
//! extractor's binding-type inference ([`crate::extract::FnDef::types`])
//! plus a few domain receiver hints (`phys` is always the simulated
//! physical memory) keep the approximation tight in practice.

use crate::extract::{Call, CallKind, FileModel, FnDef};
use std::collections::{HashMap, VecDeque};

/// One scanned file: workspace-relative path plus its extracted model.
pub struct FileEntry {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Extracted model.
    pub model: FileModel,
}

/// Identifier of a function definition in the graph.
pub type DefId = usize;

/// The workspace call graph.
pub struct Graph<'a> {
    files: &'a [FileEntry],
    /// Flattened (file index, fn index) per definition.
    defs: Vec<(usize, usize)>,
    by_name: HashMap<&'a str, Vec<DefId>>,
    /// Receiver-name → type hints that hold workspace-wide by naming
    /// convention, tried after local binding inference.
    hints: HashMap<&'static str, &'static str>,
}

impl<'a> Graph<'a> {
    /// Builds the graph over all non-test functions in `files`.
    pub fn build(files: &'a [FileEntry]) -> Self {
        let mut defs = Vec::new();
        let mut by_name: HashMap<&str, Vec<DefId>> = HashMap::new();
        for (fi, entry) in files.iter().enumerate() {
            for (ni, f) in entry.model.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = defs.len();
                defs.push((fi, ni));
                by_name.entry(f.name.as_str()).or_default().push(id);
            }
        }
        let hints = HashMap::from([
            ("phys", "PhysMem"),
            ("machine", "Machine"),
            ("kheap", "KHeap"),
        ]);
        Graph {
            files,
            defs,
            by_name,
            hints,
        }
    }

    /// The definition behind an id.
    pub fn def(&self, id: DefId) -> &'a FnDef {
        let (fi, ni) = self.defs[id];
        &self.files[fi].model.fns[ni]
    }

    /// The file path a definition lives in.
    pub fn file_of(&self, id: DefId) -> &'a str {
        &self.files[self.defs[id].0].path
    }

    /// All definition ids, in file order.
    pub fn all_defs(&self) -> impl Iterator<Item = DefId> {
        0..self.defs.len()
    }

    /// Ids of every non-test function defined in `path`.
    pub fn defs_in_file(&self, path: &str) -> Vec<DefId> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, (fi, _))| self.files[*fi].path == path)
            .map(|(id, _)| id)
            .collect()
    }

    /// Resolves one call site made from `caller` to workspace definitions.
    pub fn resolve(&self, call: &Call, caller: &FnDef) -> Vec<DefId> {
        let Some(cands) = self.by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        let with_ctx = |want: &str| -> Vec<DefId> {
            cands
                .iter()
                .copied()
                .filter(|&id| self.def(id).ctx.as_deref() == Some(want))
                .collect()
        };
        let trait_defaults = || -> Vec<DefId> {
            cands
                .iter()
                .copied()
                .filter(|&id| self.def(id).ctx_is_trait)
                .collect()
        };
        match &call.kind {
            CallKind::Free => cands
                .iter()
                .copied()
                .filter(|&id| self.def(id).ctx.is_none())
                .collect(),
            CallKind::Qualified { qualifier } => {
                let want = if qualifier == "Self" {
                    caller.ctx.clone().unwrap_or_default()
                } else {
                    qualifier.clone()
                };
                let direct = with_ctx(&want);
                if !direct.is_empty() {
                    return direct;
                }
                let defaults = trait_defaults();
                if !defaults.is_empty() {
                    return defaults;
                }
                // `module::free_fn(...)` — the qualifier was a module.
                cands
                    .iter()
                    .copied()
                    .filter(|&id| self.def(id).ctx.is_none())
                    .collect()
            }
            CallKind::Method { receiver } => {
                let rtype: Option<String> = match receiver.as_deref() {
                    Some("self") => caller.ctx.clone(),
                    Some(r) => caller
                        .types
                        .iter()
                        .rev()
                        .find(|(n, _)| n == r)
                        .map(|(_, t)| t.clone())
                        .or_else(|| self.hints.get(r).map(|t| (*t).to_string())),
                    None => None,
                };
                match rtype {
                    Some(t) => {
                        let direct = with_ctx(&t);
                        if !direct.is_empty() {
                            direct
                        } else {
                            // The concrete type doesn't define it: a trait
                            // default, or a non-workspace (std) method.
                            trait_defaults()
                        }
                    }
                    // A closure-taking method on an unknown receiver is a
                    // std iterator/Option/Result adapter (`.map(|x| …)`);
                    // matching it against same-named workspace methods
                    // (e.g. `PageTable::map`) would wire every iterator
                    // chain into the page tables. The closure body's calls
                    // are attributed to the caller, so nothing is lost.
                    None if call.closure_arg => Vec::new(),
                    // Unknown receiver: every workspace method of the name.
                    None => cands
                        .iter()
                        .copied()
                        .filter(|&id| self.def(id).ctx.is_some())
                        .collect(),
                }
            }
        }
    }

    /// BFS reachability from `roots`. Calls made inside `contain(...)`
    /// regions are not traversed when `skip_contained` is set — the
    /// supervisor's runtime boundary already owns those panics. Returns,
    /// for each reachable definition, the id of the call-graph parent it
    /// was first reached through (roots map to themselves).
    pub fn reach(&self, roots: &[DefId], skip_contained: bool) -> HashMap<DefId, DefId> {
        let mut parent: HashMap<DefId, DefId> = HashMap::new();
        let mut queue: VecDeque<DefId> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let f = self.def(id);
            for call in &f.calls {
                if skip_contained && call.contained {
                    continue;
                }
                for target in self.resolve(call, f) {
                    if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(target) {
                        e.insert(id);
                        queue.push_back(target);
                    }
                }
            }
        }
        parent
    }

    /// The witness path root → … → `id`, as `file:fn` strings.
    pub fn witness(&self, parents: &HashMap<DefId, DefId>, id: DefId) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = id;
        loop {
            let f = self.def(cur);
            path.push(format!("{}:{}", self.file_of(cur), f.name));
            match parents.get(&cur) {
                Some(&p) if p != cur => cur = p,
                _ => break,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::lexer::lex;

    fn entry(path: &str, src: &str) -> FileEntry {
        let (toks, ds) = lex(src);
        FileEntry {
            path: path.to_string(),
            model: extract(&toks, ds, false),
        }
    }

    #[test]
    fn free_call_reaches_across_files() {
        let files = vec![
            entry("a.rs", "fn root() { helper(); }"),
            entry("b.rs", "fn helper() { leaf(); }\nfn leaf() {}"),
        ];
        let g = Graph::build(&files);
        let roots = g.defs_in_file("a.rs");
        let reach = g.reach(&roots, true);
        assert_eq!(reach.len(), 3);
        let leaf = g.all_defs().find(|&id| g.def(id).name == "leaf").unwrap();
        let w = g.witness(&reach, leaf);
        assert_eq!(w, vec!["a.rs:root", "b.rs:helper", "b.rs:leaf"]);
    }

    #[test]
    fn typed_receiver_narrows_resolution() {
        let files = vec![entry(
            "a.rs",
            "fn root(g: &Guard) { g.check(); }\n\
                 impl Guard { fn check(&self) { self.inner(); } fn inner(&self) {} }\n\
                 impl Other { fn check(&self) { bad(); } }\n\
                 fn bad() {}",
        )];
        let g = Graph::build(&files);
        let root = g.all_defs().find(|&id| g.def(id).name == "root").unwrap();
        let reach = g.reach(&[root], true);
        let names: Vec<&str> = reach.keys().map(|&id| g.def(id).name.as_str()).collect();
        assert!(names.contains(&"inner"), "Guard::check reached via type");
        assert!(
            !names.contains(&"bad"),
            "Other::check must not be pulled in"
        );
    }

    #[test]
    fn unknown_receiver_over_approximates() {
        let files = vec![entry(
            "a.rs",
            "fn root(x: &Unknown) { y.check(); }\nimpl A { fn check(&self) {} }\nimpl B { fn check(&self) {} }",
        )];
        let g = Graph::build(&files);
        let root = g.all_defs().find(|&id| g.def(id).name == "root").unwrap();
        let reach = g.reach(&[root], true);
        assert_eq!(reach.len(), 3, "both candidate methods reached");
    }

    #[test]
    fn contained_calls_are_not_traversed() {
        let files = vec![entry(
            "a.rs",
            "fn root() { contain(|| risky()); safe(); }\nfn risky() {}\nfn safe() {}",
        )];
        let g = Graph::build(&files);
        let root = g.all_defs().find(|&id| g.def(id).name == "root").unwrap();
        let reach = g.reach(&[root], true);
        let names: Vec<&str> = reach.keys().map(|&id| g.def(id).name.as_str()).collect();
        assert!(names.contains(&"safe"));
        assert!(!names.contains(&"risky"));
    }

    #[test]
    fn phys_hint_resolves_without_annotation() {
        let files = vec![entry(
            "a.rs",
            "fn root(k: &Kernel) { k.machine.phys.read(0, b); }\n\
             impl PhysMem { fn read(&self) { leaf(); } }\n\
             impl Kernel { fn read(&self) { other(); } }\n\
             fn leaf() {}\nfn other() {}",
        )];
        let g = Graph::build(&files);
        let root = g.all_defs().find(|&id| g.def(id).name == "root").unwrap();
        let reach = g.reach(&[root], true);
        let names: Vec<&str> = reach.keys().map(|&id| g.def(id).name.as_str()).collect();
        assert!(names.contains(&"leaf"));
        assert!(
            !names.contains(&"other"),
            "phys receiver must not match Kernel::read"
        );
    }

    #[test]
    fn closure_adapter_on_unknown_receiver_does_not_resolve() {
        let files = vec![entry(
            "a.rs",
            "fn root(xs: &[u64]) { xs.iter().map(|x| x + 1).count(); pt.map(va, pa); }\n\
             impl PageTable { fn map(&mut self) { write_pte(); } }\nfn write_pte() {}",
        )];
        let g = Graph::build(&files);
        let root = g.all_defs().find(|&id| g.def(id).name == "root").unwrap();
        let reach = g.reach(&[root], true);
        let names: Vec<&str> = reach.keys().map(|&id| g.def(id).name.as_str()).collect();
        assert!(
            names.contains(&"write_pte"),
            "pt.map(va, pa) (no closure) must still over-approximate"
        );
        let f = g.def(root);
        let adapter = f
            .calls
            .iter()
            .find(|c| c.name == "map" && c.closure_arg)
            .expect("iterator .map(|x| …) extracted with closure_arg");
        assert!(
            g.resolve(adapter, f).is_empty(),
            ".map(|x| …) on an unknown receiver must not match PageTable::map"
        );
    }

    #[test]
    fn self_calls_resolve_to_own_impl() {
        let files = vec![entry(
            "a.rs",
            "impl A { fn go(&self) { self.helper(); } fn helper(&self) {} }\n\
             impl B { fn helper(&self) { bad(); } }\nfn bad() {}",
        )];
        let g = Graph::build(&files);
        let root = g.all_defs().find(|&id| g.def(id).name == "go").unwrap();
        let reach = g.reach(&[root], true);
        let names: Vec<&str> = reach.keys().map(|&id| g.def(id).name.as_str()).collect();
        assert!(!names.contains(&"bad"));
    }
}
