//! Fixture crash-point registry: one label in use, one stale.

pub const REGISTRY: &[&str] = &[
    "demo.area.ok",
    "demo.stale.label",
];
