//! Seeded-violation fixture: panic sites reachable only transitively from
//! the recovery root, so findings here must carry a call-graph witness.

pub fn helper(v: u64) -> u64 {
    // Transitive panic sites: reachable from otherworld.rs::microreboot().
    if v == 0 {
        panic!("zero");
    }
    v.checked_add(1).expect("overflow")
}
