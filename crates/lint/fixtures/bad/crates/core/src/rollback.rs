//! Seeded violations for rules 6 and 7: a validation pass that writes
//! (directly and through a helper), an adopt root that raw-reads dead
//! memory, and a read+write pairing that adopts unvalidated bytes.

/// Rule 7 root (validation_roots): validation must be write-free.
pub fn validate(phys: &mut PhysMem) -> bool {
    let _ = phys.write_u64(8, 1); // direct write during validation
    stamp_helper(phys); // transitive write, needs a witness
    true
}

fn stamp_helper(phys: &mut PhysMem) {
    let _ = phys.zero_frame(3);
}

/// Rule 6 root (adopt_roots): raw read feeding the adopt seam. The same
/// site is also an untrusted-read (core is not in the codec layer).
pub fn apply(phys: &mut PhysMem) -> u64 {
    phys.read_u64(64).unwrap_or(0)
}

/// Rule 6 pairing: raw read and raw write in one core function adopts
/// unvalidated dead bytes by construction, reachable or not.
pub fn adopt_cache(phys: &mut PhysMem) {
    let v = phys.read_u64(128).unwrap_or(0);
    let _ = phys.write_u64(256, v);
}
