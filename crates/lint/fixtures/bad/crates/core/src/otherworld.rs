//! Seeded-violation fixture: a recovery root that panics directly,
//! transitively, and through slice indexing, plus broken escape hatches.

pub fn microreboot(input: Option<u64>) -> u64 {
    // Direct panic site in a recovery root.
    let v = input.unwrap();
    // Indexing in a dead-data-interpreting crate (core is in index_scope).
    let table = [1u64, 2, 3];
    let picked = table[v as usize];
    helper(picked)
}

pub fn misuse_of_allows(x: Option<u64>) -> u64 {
    // ow-lint: allow(recovery-panic)
    let no_reason = x.unwrap();
    // ow-lint: allow(recovery-panic) -- nothing here actually panics
    no_reason + 1
}
