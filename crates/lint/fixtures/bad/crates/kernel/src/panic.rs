//! Seeded-violation fixture: the panic path allocates from the kernel heap.

pub struct KHeap;

impl KHeap {
    pub fn alloc(&mut self, _size: u64) -> Option<u64> {
        Some(0)
    }
}

pub fn do_panic(kheap: &mut KHeap) {
    // The handoff must not depend on a heap the fault may have corrupted.
    let _ = kheap.alloc(64);
    record_cause(kheap);
}

fn record_cause(kheap: &mut KHeap) {
    // Transitive allocation, also on the panic path.
    let _ = kheap.alloc(16);
}
