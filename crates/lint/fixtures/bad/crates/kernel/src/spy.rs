//! Seeded-violation fixture: a raw dead-memory read outside the
//! validated-cursor layer and the allowlist.

pub struct PhysMem;

impl PhysMem {
    pub fn read_u64(&self, _addr: u64) -> Result<u64, ()> {
        Ok(0)
    }
}

pub fn peek(phys: &PhysMem) -> u64 {
    phys.read_u64(0x1000).unwrap_or(0)
}
