//! Seeded-violation fixture: crash-point label discipline — a duplicate
//! label, a grammar violation, and an unregistered label.

pub fn poke() {
    ow_crashpoint::crash_point!("demo.area.ok");
    ow_crashpoint::crash_point!("demo.area.ok");
    ow_crashpoint::crash_point!("Not-A-Label");
    ow_crashpoint::crash_point!("demo.never.registered");
}
