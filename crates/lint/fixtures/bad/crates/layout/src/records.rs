//! Fixture records: Alpha is fully wired, Beta has neither a registry
//! entry nor a golden sample.

pub trait Record {
    fn size(&self) -> u64;
}

pub struct Alpha;
pub struct Beta;

impl Record for Alpha {
    fn size(&self) -> u64 {
        8
    }
}

impl Record for Beta {
    fn size(&self) -> u64 {
        16
    }
}
