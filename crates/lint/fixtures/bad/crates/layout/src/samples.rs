//! Fixture samples: only Alpha has a golden-encoding case.

pub fn cases() -> Vec<&'static str> {
    vec!["Alpha"]
}
