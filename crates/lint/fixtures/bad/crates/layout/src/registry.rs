//! Fixture registry: only Alpha is registered.

macro_rules! reg {
    ($t:ident) => {
        stringify!($t)
    };
}

pub fn all() -> &'static str {
    reg!(Alpha)
}
