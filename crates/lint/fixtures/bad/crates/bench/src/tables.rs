//! Seeded rule-8 violation on the bench side of the determinism scope:
//! a raw-seed RNG constructed while rendering merged JSON.

pub fn table5_json() -> String {
    let rng = SimRng::new(7); // raw (underived) seed
    format!("{}", rng.next_u64())
}
