//! Seeded rule-8 violations: nondeterminism reachable from a campaign
//! root (wall clock, environment, map iteration) and a raw-seed RNG.

/// Rule 8 root (determinism_roots): everything it reaches feeds merged
/// campaign results.
pub fn run_indexed(map: &HashMap<u64, u64>) -> Vec<u64> {
    let t = timing_helper(1);
    let j = job_env();
    let s = shuffle(map);
    vec![t, j, s]
}

fn timing_helper(n: u64) -> u64 {
    let t = Instant::now(); // wall clock feeding results
    n + t.elapsed().as_nanos() as u64
}

fn job_env() -> u64 {
    if std::env::var("OW_FAKE").is_ok() { 1 } else { 0 } // env feeding results
}

fn shuffle(map: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (k, v) in map.iter() {
        acc += k + v; // unordered iteration feeding results
    }
    acc
}

/// Raw seeds are wrong at the construction site, reachable or not.
pub fn raw_rng() -> SimRng {
    SimRng::seed_from_u64(12345)
}
