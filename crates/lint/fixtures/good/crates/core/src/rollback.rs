//! Clean mirror for rules 6 and 7: validation only reads — through the
//! typed codec, not raw `PhysMem` — and the adopt path carries no raw
//! reads or writes of its own.

/// Validation pass: codec reads and pure checks only.
pub fn validate(k: &Kernel) -> bool {
    let fresh = freshness_check(k);
    let parsed = EpochCheckpoint::read(&k.machine.phys, 64).is_ok();
    fresh && parsed
}

fn freshness_check(_k: &Kernel) -> bool {
    true
}

/// Adopt root: consumes only values the validation pass produced.
pub fn apply(k: &mut Kernel) -> bool {
    copy_snippets(k)
}

fn copy_snippets(_k: &mut Kernel) -> bool {
    true
}
