//! Clean fixture: the same shape as the bad tree, panic-free.

pub fn microreboot(input: Option<u64>) -> Result<u64, &'static str> {
    let v = input.ok_or("missing input")?;
    let table = [1u64, 2, 3];
    let picked = table.get(v as usize).copied().ok_or("out of range")?;
    Ok(helper(picked))
}

fn helper(v: u64) -> u64 {
    v.saturating_add(1)
}

pub fn justified_allow(x: Option<u64>) -> u64 {
    // ow-lint: allow(recovery-panic) -- fixture: exercises a justified, used escape hatch
    x.expect("fixture invariant")
}
