//! Clean fixture: the panic path touches no heap.

pub struct Ring;

impl Ring {
    pub fn emit(&mut self, _word: u64) {}
}

pub fn do_panic(ring: &mut Ring) {
    ring.emit(0xdead);
    record_cause(ring);
}

fn record_cause(ring: &mut Ring) {
    ring.emit(0xbeef);
}
