//! Clean fixture: a registered, well-formed, unique crash-point label.

pub fn poke() {
    ow_crashpoint::crash_point!("demo.area.ok");
}
