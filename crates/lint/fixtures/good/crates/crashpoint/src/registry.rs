//! Fixture crash-point registry: the live label plus one justified
//! reservation.

pub const REGISTRY: &[&str] = &[
    "demo.area.ok",
    // ow-lint: allow(crash-point-label) -- reserved for the next campaign phase
    "demo.reserved.label",
];
