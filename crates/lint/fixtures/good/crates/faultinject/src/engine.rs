//! Clean mirror for rule 8: the RNG seed derives through the stream-seed
//! family, and the one environment read carries a justified allow.

/// Campaign root: deterministic by construction.
pub fn run_indexed(seed: u64) -> Vec<u64> {
    let rng = SimRng::seed_from_u64(stream_seed(seed, 1));
    let _jobs = resolve_jobs();
    vec![seed, rng.next_u64()]
}

fn resolve_jobs() -> bool {
    // ow-lint: allow(campaign-determinism) -- fixture: job count only affects scheduling; the seed-ordered merger keeps output byte-identical
    std::env::var("OW_JOBS").is_ok()
}
