//! Fixture registry: every record type is registered.

macro_rules! reg {
    ($t:ident) => {
        stringify!($t)
    };
}

pub fn all() -> [&'static str; 2] {
    [reg!(Alpha), reg!(Beta)]
}
