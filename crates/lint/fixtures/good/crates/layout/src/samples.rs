//! Fixture samples: every record type has a golden-encoding case.

pub fn cases() -> Vec<&'static str> {
    vec!["Alpha", "Beta(default)"]
}
