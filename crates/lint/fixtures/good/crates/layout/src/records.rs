//! Fixture records: both types fully wired into registry and samples.

pub trait Record {
    fn size(&self) -> u64;
}

pub struct Alpha;
pub struct Beta;

impl Record for Alpha {
    fn size(&self) -> u64 {
        8
    }
}

impl Record for Beta {
    fn size(&self) -> u64 {
        16
    }
}
