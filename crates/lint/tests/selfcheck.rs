//! Self-check: the real workspace must pass its own crash-safety lint.
//!
//! This is the same gate `ci.sh` runs via the CLI; having it inside
//! `cargo test` means a bare `cargo test --workspace` catches regressions
//! even when the shell gate is skipped.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let cfg = ow_lint::Config::workspace(&root);
    let report = ow_lint::run(&cfg).expect("workspace readable");
    assert!(
        report.scanned_files > 50,
        "suspiciously few files scanned ({}); scan roots broken?",
        report.scanned_files
    );
    assert!(
        report.findings.is_empty(),
        "crash-safety lint found {} violation(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| format!("  {}: {}:{} {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.allows_used > 0,
        "the workspace is known to carry justified allows; zero in use \
         suggests directive parsing broke"
    );
}
