//! Fixture gate: the seeded-violation tree must fail with exactly the
//! expected findings, and the clean mirror must pass. Together these pin
//! both directions of the analysis — no silent false negatives, no noise.

use std::path::Path;

fn fixture_root(which: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

fn rules_of(report: &ow_lint::Report) -> Vec<(&str, &str, u32)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.file.as_str(), f.line))
        .collect()
}

#[test]
fn bad_fixture_trips_every_rule() {
    let cfg = ow_lint::Config::workspace(&fixture_root("bad"));
    let report = ow_lint::run(&cfg).expect("fixture tree readable");

    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    for expected in [
        "recovery-panic",
        "untrusted-read",
        "record-registry",
        "panic-path-alloc",
        "crash-point-label",
        "validate-before-adopt",
        "validation-write-free",
        "campaign-determinism",
        "allow-missing-reason",
        "stale-allow",
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} not triggered; got {:?}",
            rules_of(&report)
        );
    }

    // Pin the exact finding set so changes to the analysis are deliberate.
    let by_rule = |r: &str| rules.iter().filter(|x| **x == r).count();
    assert_eq!(by_rule("recovery-panic"), 4, "{:?}", rules_of(&report));
    assert_eq!(by_rule("panic-path-alloc"), 2, "{:?}", rules_of(&report));
    assert_eq!(by_rule("untrusted-read"), 3, "{:?}", rules_of(&report));
    assert_eq!(by_rule("record-registry"), 2, "{:?}", rules_of(&report));
    assert_eq!(by_rule("crash-point-label"), 4, "{:?}", rules_of(&report));
    assert_eq!(
        by_rule("validate-before-adopt"),
        2,
        "{:?}",
        rules_of(&report)
    );
    assert_eq!(
        by_rule("validation-write-free"),
        2,
        "{:?}",
        rules_of(&report)
    );
    assert_eq!(
        by_rule("campaign-determinism"),
        5,
        "{:?}",
        rules_of(&report)
    );
    assert_eq!(
        by_rule("allow-missing-reason"),
        1,
        "{:?}",
        rules_of(&report)
    );
    assert_eq!(by_rule("stale-allow"), 1, "{:?}", rules_of(&report));
    assert_eq!(report.findings.len(), 26, "{:?}", rules_of(&report));
}

#[test]
fn bad_fixture_reports_transitive_witness() {
    let cfg = ow_lint::Config::workspace(&fixture_root("bad"));
    let report = ow_lint::run(&cfg).expect("fixture tree readable");
    let transitive = report
        .findings
        .iter()
        .find(|f| f.rule == "recovery-panic" && f.function == "helper")
        .expect("helper's panic! must be reachable from microreboot");
    assert!(
        transitive.via.len() > 1,
        "witness path should show the call chain, got {:?}",
        transitive.via
    );

    // The effect-system rules produce witnesses too: a wall-clock read two
    // hops below the campaign root must surface the call chain.
    let effectful = report
        .findings
        .iter()
        .find(|f| f.rule == "campaign-determinism" && f.function == "timing_helper")
        .expect("timing_helper's Instant::now must be reachable from run_indexed");
    assert!(
        effectful.via.len() > 1,
        "effect witness should show the call chain, got {:?}",
        effectful.via
    );
}

#[test]
fn good_fixture_is_clean_with_a_used_allow() {
    let cfg = ow_lint::Config::workspace(&fixture_root("good"));
    let report = ow_lint::run(&cfg).expect("fixture tree readable");
    assert!(
        report.findings.is_empty(),
        "clean fixture produced findings: {:#?}",
        report.findings
    );
    assert_eq!(
        report.allows_used, 3,
        "every justified escape hatch should count as in use"
    );
}

#[test]
fn json_report_is_well_formed() {
    let cfg = ow_lint::Config::workspace(&fixture_root("bad"));
    let report = ow_lint::run(&cfg).expect("fixture tree readable");
    let json = report.to_json();
    assert!(json.starts_with("{\"findings\":["));
    assert!(json.contains("\"allows\":"));
    assert!(json.contains("\"scanned_files\":"));
    assert!(json.contains("\"recovery-panic\""));
    assert!(json.contains("\"campaign-determinism\""));
    // Balanced braces/brackets — a cheap structural sanity check given the
    // hand-rolled serializer.
    let balance = |open: char, close: char| {
        json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}'));
    assert!(balance('[', ']'));
}
