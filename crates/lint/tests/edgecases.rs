//! Lexer and extraction edge cases: source shapes that look like effectful
//! code but are not (string literals, comments, test-only modules) must
//! produce no phantom effects and no findings.

use ow_lint::extract::{extract, FileModel};
use ow_lint::graph::FileEntry;
use ow_lint::lexer::lex;

fn model(src: &str) -> FileModel {
    let (toks, directives) = lex(src);
    extract(&toks, directives, false)
}

fn entry(path: &str, src: &str) -> FileEntry {
    FileEntry {
        path: path.to_string(),
        model: model(src),
    }
}

#[test]
fn raw_strings_carry_no_phantom_effects() {
    let m = model(
        "fn render() -> String {\n\
         let a = r\"phys.read_u64(0) reads PhysMem\";\n\
         let b = r#\"for (k, v) in map.iter() { HashMap<u64, u64> }\"#;\n\
         let c = \"phys.write_u64(8, 1) and std::env::var(\\\"OW_JOBS\\\")\";\n\
         format!(\"{a}{b}{c}\")\n\
         }\n",
    );
    let f = &m.fns[0];
    assert!(f.taint_reads.is_empty(), "{:?}", f.taint_reads);
    assert!(f.taint_writes.is_empty(), "{:?}", f.taint_writes);
    assert!(f.nondet.is_empty(), "{:?}", f.nondet);
    assert!(
        !f.calls
            .iter()
            .any(|c| c.name == "read_u64" || c.name == "var" || c.name == "iter"),
        "calls extracted from string literals: {:?}",
        f.calls
    );
    // The literals themselves are still captured for registry matching.
    assert!(m.strings.iter().any(|(s, _)| s.contains("read_u64")));
}

#[test]
fn nested_block_comments_hide_code_and_keep_line_numbers() {
    let m = model(
        "/* outer /* inner: phys.write_u64(0, 1) */\n\
         still comment: std::env::var(\"X\") and map.iter()\n\
         */\n\
         fn after() { work(); }\n",
    );
    assert_eq!(m.fns.len(), 1);
    let f = &m.fns[0];
    assert_eq!(f.name, "after");
    assert_eq!(f.line, 4, "nested comment must not desync line numbers");
    assert!(f.taint_writes.is_empty(), "{:?}", f.taint_writes);
    assert!(f.nondet.is_empty(), "{:?}", f.nondet);
    assert_eq!(f.calls.len(), 1, "{:?}", f.calls);
    assert_eq!(f.calls[0].name, "work");
}

#[test]
fn directive_inside_string_literal_is_not_a_directive() {
    let m = model(
        "fn doc() -> &'static str {\n\
         \"// ow-lint: allow(untrusted-read) -- not a real directive\"\n\
         }\n",
    );
    assert!(
        m.directives.is_empty(),
        "directive parsed out of a string literal: {:?}",
        m.directives
    );
}

#[test]
fn cfg_test_module_in_non_test_file_is_inert() {
    // A clean validation root plus a #[cfg(test)] module whose helper does
    // everything the rules forbid. The helper must be marked in_test, stay
    // out of the call graph, and contribute no findings or effects.
    let src = "pub fn validate(k: &Kernel) -> bool {\n\
               freshness(k)\n\
               }\n\
               fn freshness(_k: &Kernel) -> bool { true }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               fn freshness(phys: &mut PhysMem) -> bool {\n\
               let _ = phys.write_u64(0, 1);\n\
               let v = phys.read_u64(8).unwrap_or(0);\n\
               let _ = std::env::var(\"OW_JOBS\");\n\
               let rng = SimRng::seed_from_u64(1234);\n\
               v == rng.next_u64()\n\
               }\n\
               }\n";
    let files = vec![entry("crates/core/src/rollback.rs", src)];
    let test_fn = files[0]
        .model
        .fns
        .iter()
        .find(|f| f.in_test)
        .expect("test helper extracted");
    assert!(
        !test_fn.taint_writes.is_empty(),
        "helper really is effectful"
    );
    assert!(
        !test_fn.nondet.is_empty(),
        "helper really is nondeterministic"
    );

    let cfg = ow_lint::Config::workspace(std::path::Path::new("."));
    let (findings, _allows) = ow_lint::rules::check(&cfg, &files);
    assert!(
        findings.is_empty(),
        "cfg(test) code leaked into the analysis: {findings:#?}"
    );
}
