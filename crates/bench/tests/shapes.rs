//! Shape-regression tests: the qualitative claims of the paper's evaluation
//! (orderings, dominance, bands) must keep holding as the code evolves.
//! These guard the *reproduction* the way unit tests guard the code.

use ow_bench::tables;
use ow_kernel::RobustnessFixes;

#[test]
fn table3_overhead_ordering_matches_the_paper() {
    // MySQL < Apache << Volano on both TLB models, and the tag switch must
    // collapse the overhead: no full flush on the syscall path, only the
    // kernel working set competing for slots.
    let rows = tables::table3(80);
    let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    let (mysql, apache, volano) = (by("MySQL"), by("Apache"), by("Volano"));
    type Cell = fn(&tables::Table3Row) -> tables::Table3Cell;
    for cell in [(|r| r.tagged) as Cell, |r| r.untagged] {
        assert!(
            cell(mysql).overhead_pct < cell(apache).overhead_pct,
            "{rows:?}"
        );
        assert!(
            cell(apache).overhead_pct < cell(volano).overhead_pct,
            "{rows:?}"
        );
    }
    for r in &rows {
        assert!(
            r.tagged.overhead_pct < r.untagged.overhead_pct,
            "{}: tag switch must beat flush-per-switch: {r:?}",
            r.name
        );
        assert!(
            r.tagged.tlb_increase_pct > 0.0 && r.untagged.tlb_increase_pct > 0.0,
            "protection must raise TLB misses: {r:?}"
        );
        assert_eq!(
            r.tagged.flushes, 0,
            "{}: tagged mode must never flush",
            r.name
        );
        assert!(
            r.untagged.flushes > 0,
            "{}: untagged mode flushes per switch",
            r.name
        );
        assert!(r.tagged.asid_switches > 0, "{}: {r:?}", r.name);
    }
    // The headline fix: Volano's overhead drops from double digits to below
    // 5%, at most half its untagged value, and its TLB-miss increase lands
    // within 2x of the paper's 55% instead of overshooting past 130%.
    assert!(volano.tagged.overhead_pct < 5.0, "{volano:?}");
    assert!(
        volano.tagged.overhead_pct <= 0.5 * volano.untagged.overhead_pct,
        "{volano:?}"
    );
    assert!(
        (27.5..110.0).contains(&volano.tagged.tlb_increase_pct),
        "{volano:?}"
    );
    assert!(volano.untagged.overhead_pct > 10.0, "{volano:?}");
}

#[test]
fn table4_read_sizes_grow_with_app_and_page_tables_dominate() {
    let rows = tables::table4(60);
    // Ordering: vi < JOE < MySQL < Apache < BLCR.
    for pair in rows.windows(2) {
        assert!(
            pair[0].kernel_bytes < pair[1].kernel_bytes,
            "{} ({}) !< {} ({})",
            pair[0].name,
            pair[0].kernel_bytes,
            pair[1].name,
            pair[1].kernel_bytes
        );
    }
    for r in &rows {
        assert!(
            r.page_table_pct > 50.0,
            "{}: page tables must dominate",
            r.name
        );
        // §4: a vanishing share of the address space.
        let share = r.kernel_bytes as f64 / ow_simhw::paging::VA_LIMIT as f64;
        assert!(
            share < 0.0013,
            "{}: {share} must stay below the 0.13% bound",
            r.name
        );
    }
}

#[test]
fn table5_small_campaign_stays_in_the_paper_band() {
    let rows = tables::table5(40, RobustnessFixes::default(), 0x51a9, 0);
    for r in &rows {
        assert!(
            r.unprotected.success_pct() >= 90.0,
            "{}: {:.1}%",
            r.name,
            r.unprotected.success_pct()
        );
        assert!(
            r.protected.data_corruption <= r.unprotected.data_corruption + 1,
            "{}: protection must not increase corruption",
            r.name
        );
    }
}

#[test]
fn table5_ablation_loses_the_stall_and_doublefault_classes() {
    let fixed = tables::table5(40, RobustnessFixes::default(), 0xab1a, 0);
    let legacy = tables::table5(40, RobustnessFixes::legacy(), 0xab1a, 0);
    let avg = |rows: &[tables::Table5Row]| {
        rows.iter()
            .map(|r| r.unprotected.success_pct())
            .sum::<f64>()
            / rows.len() as f64
    };
    assert!(
        avg(&legacy) + 3.0 < avg(&fixed),
        "legacy {:.1}% must trail fixed {:.1}%",
        avg(&legacy),
        avg(&fixed)
    );
}

#[test]
fn table6_interruption_is_below_cold_boot_and_fast_boot_helps() {
    for app in ["shell", "mysqld", "httpd"] {
        let normal = tables::table6_row_with(app, false);
        assert!(
            normal.interruption_seconds < normal.boot_seconds,
            "{app}: interruption {:.0}s !< boot {:.0}s",
            normal.interruption_seconds,
            normal.boot_seconds
        );
        let fast = tables::table6_row_with(app, true);
        assert!(
            fast.interruption_seconds < normal.interruption_seconds / 1.3,
            "{app}: fast boot must shrink the interruption meaningfully"
        );
    }
}

#[test]
fn table6_warm_lazy_recovers_the_largest_app_at_least_5x_faster() {
    let rows = tables::table6_matrix(0);
    let headline = tables::table6_headline(&rows);
    assert!(
        headline >= 5.0,
        "warm+lazy must beat cold/eager by at least 5x on the largest app, got {headline:.2}x"
    );
    for r in &rows {
        let cold_eager = &r.cells[0];
        let warm_lazy = &r.cells[3];
        assert!(
            warm_lazy.interruption_seconds < cold_eager.interruption_seconds,
            "{}: warm/lazy {:.1}s !< cold/eager {:.1}s",
            r.name,
            warm_lazy.interruption_seconds,
            cold_eager.interruption_seconds
        );
        // Warm cells must actually adopt every validated structure; cold
        // cells must never report adoption. The rollback cell never morphs
        // at all, so it adopts nothing either.
        for c in &r.cells {
            let warm = c.mode.morph == ow_core::MorphMode::Warm && !c.mode.rollback;
            assert_eq!(
                (c.adoption.frames, c.adoption.swap, c.adoption.cache),
                (warm, warm, warm),
                "{}: {} adoption {:?}",
                r.name,
                c.mode.name,
                c.adoption
            );
        }
    }
}

#[test]
fn rollback_interruption_beats_cold_microreboot_by_50x() {
    // The rung-0 acceptance pin: rolling the records back in place must
    // drive the service interruption at least 50x below the paper's
    // cold/eager microreboot for every Table 6 app — no crash-kernel boot,
    // no resurrection, no morph, nothing replayed.
    let rows = tables::table6_matrix(0);
    for r in &rows {
        let cold = r
            .cells
            .iter()
            .find(|c| c.mode.name == "cold_eager")
            .unwrap()
            .interruption_seconds;
        let rb = r
            .cells
            .iter()
            .find(|c| c.mode.name == "rollback")
            .unwrap()
            .interruption_seconds;
        assert!(
            rb * 50.0 <= cold,
            "{}: rollback {rb:.4}s must be at least 50x below cold {cold:.2}s",
            r.name
        );
    }
    let headline = tables::table6_rollback_headline(&rows);
    assert!(headline >= 50.0, "rollback headline {headline:.1}x < 50x");
}

#[test]
fn recovery_table_shows_the_supervisor_ablation_delta() {
    let result = tables::recovery_table(10, 0x5ec0_4e4a, 0);
    assert_eq!(result.records.len(), 10);
    assert_eq!(result.panic_escapes, 0, "no panic may escape microreboot()");
    assert!(
        result.without_supervisor.whole_failure > result.with_supervisor.whole_failure,
        "supervisor must convert whole-microreboot failures: on={} off={}",
        result.with_supervisor.whole_failure,
        result.without_supervisor.whole_failure
    );
    let doc = tables::recovery_json(&result);
    for key in [
        "experiments",
        "with_supervisor",
        "without_supervisor",
        "panic_escapes",
        "records",
    ] {
        assert!(doc.get(key).is_some(), "recovery_json missing {key}");
    }
    for key in [
        "full_resurrection",
        "degraded",
        "clean_restart",
        "gen2_restart",
        "whole_failure",
    ] {
        assert!(
            doc.get("with_supervisor")
                .and_then(|s| s.get(key))
                .is_some(),
            "side json missing {key}"
        );
    }
}

#[test]
fn checkpointing_to_memory_beats_disk_by_over_10x() {
    use ow_apps::blcr::{BlcrWorkload, CkptMode, CKPT_PERIOD};
    use ow_apps::Workload;
    let cycles = |mode: CkptMode| {
        let mut k = ow_bench::boot_eval(false);
        let mut w = BlcrWorkload::new(16, mode);
        let _pid = w.setup(&mut k);
        for _ in 0..16 * CKPT_PERIOD * 2 - 1 {
            k.run_step();
        }
        let t0 = k.machine.clock.now();
        k.run_step(); // the checkpointing step
        k.machine.clock.now() - t0
    };
    let disk = cycles(CkptMode::Disk);
    let mem = cycles(CkptMode::Memory);
    assert!(
        disk > mem * 10,
        "§5.4: disk {disk} cycles must exceed 10x memory {mem} cycles"
    );
}
