//! Byte-level determinism of the bench table outputs across job counts:
//! the sharded campaign engine merges results in seed order, so the JSON
//! documents the bench binaries emit must be identical for every `--jobs`.

use ow_bench::tables::{recovery_json, recovery_table, table5, table5_json};
use ow_kernel::RobustnessFixes;

#[test]
fn table5_json_is_byte_identical_across_job_counts() {
    let rows = |jobs| table5(4, RobustnessFixes::default(), 0x07e5_2010, jobs);
    let serial = table5_json(&rows(1)).to_pretty();
    for jobs in [2, 5] {
        let parallel = table5_json(&rows(jobs)).to_pretty();
        assert_eq!(serial, parallel, "table5 --json diverged at jobs={jobs}");
    }
}

#[test]
fn recovery_json_is_byte_identical_across_job_counts() {
    let serial = recovery_json(&recovery_table(6, 0x5ec0_4e4a, 1)).to_pretty();
    for jobs in [3, 6] {
        let parallel = recovery_json(&recovery_table(6, 0x5ec0_4e4a, jobs)).to_pretty();
        assert_eq!(serial, parallel, "recovery --json diverged at jobs={jobs}");
    }
}
