//! The recovery-robustness table: the resurrection-supervisor ablation.
//!
//! Identical seeded faults are injected into the *recovery path itself*
//! (dead-memory chain cycles, resurrection-engine panics and stalls,
//! crash-kernel boot failures, panic storms, and checkpoint corruption:
//! stale epochs, torn A/B slots, poisoned descriptors); each experiment
//! runs with the supervisor on, off, and with rollback-in-place enabled,
//! showing which whole-microreboot failures the supervisor converts into
//! per-process degradations, clean restarts, or generation-2 escalations —
//! and which panics rung 0 absorbs without booting the crash kernel.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let experiments: usize = args
        .iter()
        .position(|a| a == "--experiments")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let jobs = ow_faultinject::jobs_from_args(&args);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(ow_bench::tables::RECOVERY_SEED);

    let result = ow_bench::tables::recovery_table(experiments, seed, jobs);

    let side_row = |label: &str, s: &ow_faultinject::RecoverySide| {
        vec![
            label.to_string(),
            s.rolled_back.to_string(),
            s.full.to_string(),
            s.degraded.to_string(),
            s.clean_restart.to_string(),
            s.gen2.to_string(),
            s.per_process_failure.to_string(),
            s.whole_failure.to_string(),
            s.survived().to_string(),
        ]
    };
    ow_bench::print_table(
        "Recovery robustness: supervisor/rollback ablation over injected recovery-time faults.",
        &[
            "Arm",
            "Rolled back",
            "Full resurrection",
            "Degraded",
            "Clean restart",
            "Gen-2 restart",
            "Per-process failure",
            "Whole-microreboot failure",
            "Machine survived",
        ],
        &[
            side_row("supervisor on", &result.with_supervisor),
            side_row("supervisor off", &result.without_supervisor),
            side_row("rollback", &result.with_rollback),
        ],
    );
    println!(
        "\n({} paired experiments; supervisor counters: {} contained panics, \
         {} watchdog firings; {} panics escaped microreboot())",
        result.experiments,
        result.with_supervisor.contained_panics,
        result.with_supervisor.watchdog_fires,
        result.panic_escapes,
    );

    if let Some(path) = json_path {
        let doc = ow_bench::tables::recovery_json(&result);
        std::fs::write(&path, doc.to_pretty()).expect("write --json file");
        println!("wrote {path}");
    }
}
