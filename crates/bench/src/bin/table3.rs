//! Regenerates Table 3: performance overhead of enabling user memory space
//! protection while executing system calls, on tagged (ASID) and untagged
//! (flush-per-switch) TLB hardware.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let batches: u32 = args
        .iter()
        .position(|a| a == "--batches")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let jobs = ow_faultinject::jobs_from_args(&args);

    let rows = ow_bench::tables::table3_jobs(batches, jobs);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.0}%", r.tagged.tlb_increase_pct),
                format!("{:.1}%", r.tagged.overhead_pct),
                format!("{:.0}%", r.untagged.tlb_increase_pct),
                format!("{:.1}%", r.untagged.overhead_pct),
            ]
        })
        .collect();
    ow_bench::print_table(
        "Table 3. Performance overhead of enabling user memory space protection \
         while executing system calls (tagged vs untagged TLB).",
        &[
            "Benchmark",
            "TLB miss increase (tagged)",
            "Overhead (tagged)",
            "TLB miss increase (untagged)",
            "Overhead (untagged)",
        ],
        &printable,
    );

    if let Some(path) = json_path {
        let doc = ow_bench::tables::table3_json(&rows);
        std::fs::write(&path, doc.to_pretty()).expect("write --json file");
        println!("wrote {path}");
    }
}
