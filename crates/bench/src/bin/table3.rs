//! Regenerates Table 3: performance overhead of enabling user memory space
//! protection while executing system calls.

#![forbid(unsafe_code)]

fn main() {
    let batches: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let rows: Vec<Vec<String>> = ow_bench::tables::table3(batches)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.0}%", r.tlb_increase_pct),
                format!("{:.1}%", r.overhead_pct),
            ]
        })
        .collect();
    ow_bench::print_table(
        "Table 3. Performance overhead of enabling user memory space protection \
         while executing system calls.",
        &[
            "Benchmark",
            "Increase in TLB misses",
            "Performance overhead",
        ],
        &rows,
    );
}
