//! Regenerates Table 6: service interruption time (seconds).
//!
//! By default this measures the full recovery matrix — every workload
//! under each of the five recovery configurations (cold/warm morph ×
//! eager/lazy resurrection, plus rollback-in-place, the ladder's rung 0).
//! `--fast` keeps the legacy two-column table
//! with the §7 fast-crash-boot optimization. `--json PATH` writes the
//! machine-readable matrix (pinned by `BENCH_table6.json`); `--jobs N`
//! shards the matrix cells across workers with byte-identical output.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let jobs = ow_faultinject::jobs_from_args(&args);

    if fast {
        let rows: Vec<Vec<String>> = ow_bench::tables::table6_fast()
            .into_iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.0}", r.boot_seconds),
                    format!("{:.0}", r.interruption_seconds),
                ]
            })
            .collect();
        ow_bench::print_table(
            "Table 6 (with the §7 fast-crash-boot optimization).",
            &["Application", "Boot time", "Service interruption time"],
            &rows,
        );
        return;
    }

    let rows = ow_bench::tables::table6_matrix(jobs);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cols = vec![r.name.to_string(), format!("{:.0}", r.boot_seconds)];
            cols.extend(
                r.cells
                    .iter()
                    .map(|c| format!("{:.1}", c.interruption_seconds)),
            );
            cols
        })
        .collect();
    ow_bench::print_table(
        "Table 6. Service interruption time (seconds) under each recovery mode.",
        &[
            "Application",
            "Boot time",
            "cold/eager",
            "cold/lazy",
            "warm/eager",
            "warm/lazy",
            "rollback",
        ],
        &printable,
    );
    println!(
        "\n(headline: warm+lazy recovers the largest app {:.1}x faster than cold/eager; \
         rollback-in-place absorbs the panic {:.0}x faster than cold/eager)",
        ow_bench::tables::table6_headline(&rows),
        ow_bench::tables::table6_rollback_headline(&rows)
    );

    if let Some(path) = json_path {
        let doc = ow_bench::tables::table6_json(&rows);
        std::fs::write(&path, doc.to_pretty()).expect("write --json file");
        println!("wrote {path}");
    }
}
