//! Regenerates Table 6: service interruption time (seconds).

#![forbid(unsafe_code)]

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let rows = if fast {
        ow_bench::tables::table6_fast()
    } else {
        ow_bench::tables::table6()
    };
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.0}", r.boot_seconds),
                format!("{:.0}", r.interruption_seconds),
            ]
        })
        .collect();
    ow_bench::print_table(
        if fast {
            "Table 6 (with the §7 fast-crash-boot optimization)."
        } else {
            "Table 6. Service interruption time (seconds)."
        },
        &["Application", "Boot time", "Service interruption time"],
        &rows,
    );
}
