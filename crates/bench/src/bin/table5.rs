//! Regenerates Table 5: results of the resurrection experiments, and (with
//! `--ablation`) the §6 robustness-fix ablation (89% → 97%).
//!
//! `--morph cold|warm` and `--strategy copy|map|lazy` rerun the whole
//! campaign under one of the four recovery configurations; the warm-morph
//! safety claim is that every configuration reports the same outcomes.

#![forbid(unsafe_code)]

use ow_kernel::RobustnessFixes;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let experiments: usize = args
        .iter()
        .position(|a| a == "--experiments")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let ablation = args.iter().any(|a| a == "--ablation");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let jobs = ow_faultinject::jobs_from_args(&args);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(ow_bench::tables::TABLE5_SEED);

    let morph = ow_bench::morph_from_args(&args);
    let strategy = ow_bench::strategy_from_args(&args);

    let fixes = if ablation {
        RobustnessFixes::legacy()
    } else {
        RobustnessFixes::default()
    };
    let t0 = std::time::Instant::now();
    let rows = ow_bench::tables::table5_in(experiments, fixes, seed, jobs, morph, strategy);
    let wall = t0.elapsed();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let u = &r.unprotected;
            let p = &r.protected;
            vec![
                r.name.to_string(),
                format!("{:.2}%", u.success_pct()),
                format!("{:.2}%", u.boot_failure_pct()),
                format!("{:.2}%", u.resurrect_failure_pct()),
                format!(
                    "{:.2}% / {:.2}%",
                    p.data_corruption_pct(),
                    u.data_corruption_pct()
                ),
            ]
        })
        .collect();
    let title = if ablation {
        "Table 5 (ablation: §6 fixes DISABLED — the paper's initial 89% configuration)."
    } else {
        "Table 5. Results of resurrection experiments."
    };
    ow_bench::print_table(
        title,
        &[
            "Application",
            "Successful resurrection",
            "Failure to boot the crash kernel",
            "Failure to resurrect application",
            "Data corruption with / without user space protected",
        ],
        &printable,
    );
    println!(
        "\n({} effective experiments per application per mode; ~20% quiet \
         experiments discarded, as in §6)",
        experiments
    );
    eprintln!(
        "[{} worker(s), {:.1}s wall; output is byte-identical for any --jobs]",
        ow_faultinject::resolve_jobs(jobs),
        wall.as_secs_f64()
    );

    // Machine-readable export: aggregates, per-experiment trace-derived
    // cause annotations, and one full recovered flight record.
    if let Some(path) = json_path {
        let doc = ow_bench::tables::table5_json(&rows);
        std::fs::write(&path, doc.to_pretty()).expect("write --json file");
        println!("wrote {path}");
    }
}
