//! Regenerates Table 4: size of the data read by the crash kernel during
//! the resurrection process, plus §4's footprint ratio.

#![forbid(unsafe_code)]

fn main() {
    let batches: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let rows = ow_bench::tables::table4(batches);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.0} KB", r.kernel_bytes as f64 / 1024.0),
                format!("{:.0}%", r.page_table_pct),
            ]
        })
        .collect();
    ow_bench::print_table(
        "Table 4. Size of the data read by the crash kernel during the \
         resurrection process.",
        &["Application", "Kernel memory", "Page tables"],
        &printable,
    );

    println!(
        "\n§4 claim: resurrection-critical data is a vanishing share of the \
         virtual address space ({} MiB here; 3 GiB in the paper)",
        ow_simhw::paging::VA_LIMIT / (1024 * 1024)
    );
    for r in &rows {
        let pct = 100.0 * r.kernel_bytes as f64 / ow_simhw::paging::VA_LIMIT as f64;
        println!(
            "  {:>7}: {:>8} bytes critical ({:>8} bytes resident) = {:.4}% of the address space",
            r.name, r.kernel_bytes, r.footprint_bytes, pct
        );
    }
}
