//! Regenerates Table 2: modifications to the applications to support
//! Otherworld.

#![forbid(unsafe_code)]

fn main() {
    let rows: Vec<Vec<String>> = ow_apps::table2_rows()
        .into_iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.crash_procedure.to_string(),
                m.modified_lines.to_string(),
            ]
        })
        .collect();
    ow_bench::print_table(
        "Table 2. Modifications to the applications to support Otherworld.",
        &["Application", "Crash procedure", "Modified lines of code"],
        &rows,
    );
}
