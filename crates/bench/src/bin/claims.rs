//! Regenerates the in-text quantitative claims that are not in a numbered
//! table: §5.4's "in-memory checkpointing is ~10x faster than disk" and
//! footnote 3's "mapping instead of copying significantly speeds up
//! resurrection of large processes".

#![forbid(unsafe_code)]

use ow_apps::blcr::{BlcrWorkload, CkptMode};
use ow_apps::{make_workload, Workload};
use ow_core::{OtherworldConfig, ResurrectionStrategy};
use ow_faultinject::parallel_map;
use ow_kernel::{Kernel, KernelConfig};

/// Simulated cycles consumed by one full checkpoint in the given mode.
fn checkpoint_cycles(pages: u64, mode: CkptMode) -> u64 {
    let mut k = ow_bench::boot_eval(false);
    let mut w = BlcrWorkload::new(pages, mode);
    let pid = w.setup(&mut k);
    // One full pass is `pages` steps; a checkpoint fires at the end of
    // every CKPT_PERIOD-th pass. Measure the *second* checkpoint — the
    // steady state, after the file's blocks are allocated.
    let steps_to_ckpt = pages * ow_apps::blcr::CKPT_PERIOD * 2;
    for _ in 0..steps_to_ckpt - 1 {
        k.run_step();
    }
    let before = k.machine.clock.now();
    k.run_step(); // the checkpointing step
    let ckpt = k.machine.clock.now() - before;
    // Subtract the cost of a plain (non-checkpoint) step.
    let before = k.machine.clock.now();
    k.run_step();
    let plain = k.machine.clock.now() - before;
    let _ = pid;
    ckpt.saturating_sub(plain)
}

/// Cycles to drive one workload window under a kernel config.
fn window_cycles(config: KernelConfig, app: &str, batches: u32) -> u64 {
    let machine = ow_kernel::standard_machine(ow_bench::eval_machine_config());
    let mut k = Kernel::boot_cold(machine, config, ow_apps::full_registry()).expect("boot");
    let mut w = make_workload(app, 13);
    let pid = w.setup(&mut k);
    for _ in 0..8 {
        w.drive(&mut k, pid);
    }
    let c0 = k.machine.clock.now();
    for _ in 0..batches {
        w.drive(&mut k, pid);
    }
    k.machine.clock.now() - c0
}

/// Footnote-3 measurement for one page count and strategy.
fn materialization(pages: u64, strategy: ResurrectionStrategy) -> (f64, ow_core::ProcReport) {
    let mut k = ow_bench::boot_eval(false);
    let image = k.registry.get("blcr").expect("blcr registered");
    let spec = ow_kernel::SpawnSpec::new("blcr", Box::new(ow_apps::blcr::Blcr));
    let pid = k.spawn(spec).expect("spawn");
    let fresh = {
        let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid);
        (image.fresh)(&mut api, &[pages.to_string(), "memory".to_string()])
    };
    k.proc_mut(pid).expect("pid").program = Some(fresh);
    // Touch all data pages once.
    for _ in 0..pages {
        k.run_step();
    }
    k.do_panic(ow_kernel::PanicCause::Oops("claims"));
    let config = OtherworldConfig {
        strategy,
        ..OtherworldConfig::default()
    };
    let (_k2, report) = ow_core::microreboot(k, &config).expect("microreboot");
    (report.resurrection_seconds, report.procs[0].clone())
}

fn main() {
    // Every sweep below is a fixed list of independent simulator runs, so
    // they ride the same deterministic parallel engine as the campaigns
    // (`--jobs N` / `OW_JOBS`; output is identical for every job count
    // because results are merged in item order before printing).
    let jobs = ow_faultinject::jobs_from_args(&std::env::args().collect::<Vec<_>>());

    println!("§5.4: in-memory vs on-disk checkpointing (simulated cycles per checkpoint)");
    let ckpt_pages = [16u64, 64, 128];
    let ckpt = parallel_map(jobs, &ckpt_pages, |&pages, _| {
        (
            checkpoint_cycles(pages, CkptMode::Disk),
            checkpoint_cycles(pages, CkptMode::Memory),
        )
    });
    for (&pages, result) in ckpt_pages.iter().zip(ckpt) {
        let (disk, mem) = result.expect("checkpoint sweep");
        println!(
            "  {:>4} pages ({:>4} KiB): disk {:>12} cycles, memory {:>10} cycles -> {:>5.1}x faster",
            pages,
            pages * 4,
            disk,
            mem,
            disk as f64 / mem.max(1) as f64
        );
    }

    println!("\nFootnote 3: resurrection page materialization, copy vs map (simulated seconds)");
    let mat_pages = [64u64, 256, 512];
    let mat = parallel_map(jobs, &mat_pages, |&pages, _| {
        (
            materialization(pages, ResurrectionStrategy::CopyPages),
            materialization(pages, ResurrectionStrategy::MapPages),
        )
    });
    for (&pages, result) in mat_pages.iter().zip(mat) {
        let ((t0, p0), (t1, p1)) = result.expect("materialization sweep");
        println!(
            "  {:>4} pages: {:?} {:.4}s ({} copied), {:?} {:.4}s ({} mapped) -> map is {:.1}x faster",
            pages,
            ResurrectionStrategy::CopyPages,
            t0,
            p0.pages_copied,
            ResurrectionStrategy::MapPages,
            t1,
            p1.pages_mapped,
            t0 / t1.max(1e-12)
        );
    }

    println!("\n§4: descriptor-checksum hardening — runtime overhead of recomputing");
    println!("the checksum on every descriptor update (syscall markers, step counters):");
    let apps = ["mysqld", "volano"];
    let overheads = parallel_map(jobs, &apps, |&app, _| {
        let base = window_cycles(KernelConfig::default(), app, 150);
        let hard = window_cycles(
            KernelConfig {
                desc_checksums: true,
                ..KernelConfig::default()
            },
            app,
            150,
        );
        100.0 * (hard as f64 - base as f64) / base as f64
    });
    for (&app, overhead) in apps.iter().zip(overheads) {
        println!(
            "  {app:>7}: {:.2}% overhead (undetected descriptor corruption eliminated)",
            overhead.expect("overhead sweep")
        );
    }
}
