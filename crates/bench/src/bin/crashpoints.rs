//! The crash-point campaign driver: every labeled crash point × every
//! Table 5 application × every protection mode, deterministically sharded.
//!
//! ```text
//! crashpoints                          # full matrix
//! crashpoints --app vi --mode unprotected   # one slice
//! crashpoints --point recovery.resurrect.vma.rebuild --app vi --mode protected
//! crashpoints --list                   # print the registry
//! crashpoints --discover --app vi      # count-only discovery pass
//! crashpoints --morph warm --strategy lazy  # rerun under warm/lazy recovery
//! crashpoints --rollback               # rerun with rollback-in-place (rung 0)
//! ```
//!
//! Exits non-zero when any cell's outcome violates the per-point policy.

#![forbid(unsafe_code)]

use ow_faultinject::crashpoint::{
    campaign_crashpoints, crashpoints_json, discover_points, CrashpointCampaignConfig,
    CRASHPOINT_SEED,
};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if args.iter().any(|a| a == "--list") {
        println!("{} registered crash points:", ow_crashpoint::REGISTRY.len());
        for p in ow_crashpoint::REGISTRY {
            println!("  {:<40} [{}]", p.label, p.area.name());
        }
        return;
    }

    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(CRASHPOINT_SEED);
    let apps: Vec<String> = flag_value(&args, "--app")
        .map(|a| vec![a])
        .unwrap_or_default();
    let points: Vec<String> = flag_value(&args, "--point")
        .map(|p| vec![p])
        .unwrap_or_default();
    let modes: Vec<bool> = match flag_value(&args, "--mode").as_deref() {
        Some("protected") => vec![true],
        Some("unprotected") => vec![false],
        Some(other) => {
            eprintln!("unknown --mode {other} (use protected|unprotected)");
            std::process::exit(2);
        }
        None => Vec::new(),
    };

    if args.iter().any(|a| a == "--discover") {
        let apps = if apps.is_empty() {
            ow_apps::workload::TABLE5_APPS
                .iter()
                .map(|a| a.to_string())
                .collect()
        } else {
            apps
        };
        let modes = if modes.is_empty() {
            vec![false, true]
        } else {
            modes
        };
        for app in &apps {
            for &protected in &modes {
                let mode = if protected {
                    "protected"
                } else {
                    "unprotected"
                };
                let hits = discover_points(app, protected, seed);
                println!("{app} ({mode}): {} points reached", hits.len());
                for (label, n) in hits {
                    println!("  {label:<40} x{n}");
                }
            }
        }
        return;
    }

    let cfg = CrashpointCampaignConfig {
        points,
        apps,
        modes,
        seed,
        jobs: ow_faultinject::jobs_from_args(&args),
        morph: ow_bench::morph_from_args(&args),
        strategy: ow_bench::strategy_from_args(&args),
        rollback: args.iter().any(|a| a == "--rollback"),
    };
    let t0 = std::time::Instant::now();
    let res = campaign_crashpoints(&cfg);
    let wall = t0.elapsed();

    let rows: Vec<Vec<String>> = res
        .by_kind()
        .into_iter()
        .map(|(k, n)| vec![k.to_string(), n.to_string()])
        .collect();
    ow_bench::print_table(
        "Crash-point campaign: labeled crash x app x protection mode.",
        &["Outcome", "Cells"],
        &rows,
    );
    println!(
        "\n({} cells, {} unexpected; every cell reproducible via --point/--app/--mode)",
        res.cells.len(),
        res.unexpected
    );
    for c in res.cells.iter().filter(|c| !c.expected) {
        println!(
            "  UNEXPECTED {} x {} ({}) -> {}: {}",
            c.spec.label,
            c.spec.app,
            if c.spec.protected {
                "protected"
            } else {
                "unprotected"
            },
            c.outcome.kind(),
            c.outcome.detail()
        );
    }
    eprintln!(
        "[{} worker(s), {:.1}s wall; output is byte-identical for any --jobs]",
        ow_faultinject::resolve_jobs(cfg.jobs),
        wall.as_secs_f64()
    );

    if let Some(path) = flag_value(&args, "--json") {
        let doc = crashpoints_json(&cfg, &res);
        std::fs::write(&path, doc.to_pretty()).expect("write --json file");
        println!("wrote {path}");
    }

    if res.unexpected > 0 {
        std::process::exit(1);
    }
}
