//! Performance measurement of the memory-protected mode (Table 3).
//!
//! Runs a workload to steady state, then measures a window of driven
//! batches with protection off and on (fresh kernels, identical seeds) and
//! reports the TLB-miss increase and execution-time overhead.

use crate::boot_eval;
use ow_apps::Workload;

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct PerfSample {
    /// Cycles consumed by the measured window.
    pub cycles: u64,
    /// TLB misses in the window.
    pub tlb_misses: u64,
    /// TLB flushes in the window.
    pub tlb_flushes: u64,
    /// Page-table switches in the window.
    pub pt_switches: u64,
}

/// Protection-overhead comparison for one workload.
#[derive(Debug, Clone, Copy)]
pub struct PerfRow {
    /// Baseline (no protection).
    pub base: PerfSample,
    /// Memory-protected mode.
    pub protected: PerfSample,
}

impl PerfRow {
    /// Table 3 column 2: relative increase in TLB misses.
    pub fn tlb_miss_increase_pct(&self) -> f64 {
        if self.base.tlb_misses == 0 {
            return 0.0;
        }
        100.0 * (self.protected.tlb_misses as f64 - self.base.tlb_misses as f64)
            / self.base.tlb_misses as f64
    }

    /// Table 3 column 3: execution-time overhead.
    pub fn overhead_pct(&self) -> f64 {
        if self.base.cycles == 0 {
            return 0.0;
        }
        100.0 * (self.protected.cycles as f64 - self.base.cycles as f64) / self.base.cycles as f64
    }
}

fn measure_once<W: Workload>(
    mut workload: W,
    protection: bool,
    warmup_batches: u32,
    measured_batches: u32,
) -> PerfSample {
    let mut k = boot_eval(protection);
    let pid = workload.setup(&mut k);
    for _ in 0..warmup_batches {
        workload.drive(&mut k, pid);
    }
    let c0 = k.machine.clock.now();
    k.machine.mmu.reset_stats();
    let p0 = k.pt_switches;
    for _ in 0..measured_batches {
        workload.drive(&mut k, pid);
    }
    let stats = k.machine.mmu.stats();
    PerfSample {
        cycles: k.machine.clock.now() - c0,
        tlb_misses: stats.tlb_misses,
        tlb_flushes: stats.flushes,
        pt_switches: k.pt_switches - p0,
    }
}

/// Measures a workload with and without user-space protection.
pub fn protection_overhead<W: Workload>(
    make: impl Fn(u64) -> W,
    seed: u64,
    warmup_batches: u32,
    measured_batches: u32,
) -> PerfRow {
    let base = measure_once(make(seed), false, warmup_batches, measured_batches);
    let protected = measure_once(make(seed), true, warmup_batches, measured_batches);
    PerfRow { base, protected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_apps::volano::VolanoWorkload;

    #[test]
    fn protection_costs_more_and_misses_more() {
        let row = protection_overhead(VolanoWorkload::new, 7, 5, 20);
        assert!(row.protected.cycles > row.base.cycles);
        assert!(row.protected.tlb_misses > row.base.tlb_misses);
        assert!(row.protected.pt_switches > 0);
        assert_eq!(row.base.pt_switches, 0);
    }
}
