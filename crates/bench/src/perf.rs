//! Performance measurement of the memory-protected mode (Table 3).
//!
//! Runs a workload to steady state, then measures a window of driven
//! batches with protection off and on (fresh kernels, identical seeds) and
//! reports the TLB-miss increase and execution-time overhead — on tagged
//! (ASID) or untagged (flush-per-switch) TLB hardware.

use crate::boot_eval_on;
use ow_apps::Workload;

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct PerfSample {
    /// Cycles consumed by the measured window.
    pub cycles: u64,
    /// TLB misses in the window.
    pub tlb_misses: u64,
    /// TLB flushes in the window.
    pub tlb_flushes: u64,
    /// Single-page TLB invalidations in the window.
    pub invalidations: u64,
    /// ASID tag-register switches in the window.
    pub asid_switches: u64,
    /// Page-table switches in the window.
    pub pt_switches: u64,
}

/// Protection-overhead comparison for one workload.
#[derive(Debug, Clone, Copy)]
pub struct PerfRow {
    /// Baseline (no protection).
    pub base: PerfSample,
    /// Memory-protected mode.
    pub protected: PerfSample,
}

impl PerfRow {
    /// Table 3 column 2: relative increase in TLB misses.
    pub fn tlb_miss_increase_pct(&self) -> f64 {
        if self.base.tlb_misses == 0 {
            return 0.0;
        }
        100.0 * (self.protected.tlb_misses as f64 - self.base.tlb_misses as f64)
            / self.base.tlb_misses as f64
    }

    /// Table 3 column 3: execution-time overhead.
    pub fn overhead_pct(&self) -> f64 {
        if self.base.cycles == 0 {
            return 0.0;
        }
        100.0 * (self.protected.cycles as f64 - self.base.cycles as f64) / self.base.cycles as f64
    }
}

fn measure_once<W: Workload>(
    mut workload: W,
    protection: bool,
    tlb_tagged: bool,
    warmup_batches: u32,
    measured_batches: u32,
) -> PerfSample {
    let mut k = boot_eval_on(protection, tlb_tagged);
    let pid = workload.setup(&mut k);
    for _ in 0..warmup_batches {
        workload.drive(&mut k, pid);
    }
    let c0 = k.machine.clock.now();
    k.machine.mmu.reset_stats();
    let p0 = k.pt_switches;
    for _ in 0..measured_batches {
        workload.drive(&mut k, pid);
    }
    let stats = k.machine.mmu.stats();
    PerfSample {
        cycles: k.machine.clock.now() - c0,
        tlb_misses: stats.tlb_misses,
        tlb_flushes: stats.flushes,
        invalidations: stats.invalidations,
        asid_switches: stats.asid_switches,
        pt_switches: k.pt_switches - p0,
    }
}

/// Measures a workload with and without user-space protection on tagged
/// TLB hardware (the default machine).
pub fn protection_overhead<W: Workload>(
    make: impl Fn(u64) -> W,
    seed: u64,
    warmup_batches: u32,
    measured_batches: u32,
) -> PerfRow {
    protection_overhead_on(make, seed, warmup_batches, measured_batches, true)
}

/// Measures a workload with and without user-space protection, selecting
/// tagged or untagged TLB hardware.
pub fn protection_overhead_on<W: Workload>(
    make: impl Fn(u64) -> W,
    seed: u64,
    warmup_batches: u32,
    measured_batches: u32,
    tlb_tagged: bool,
) -> PerfRow {
    let base = measure_once(
        make(seed),
        false,
        tlb_tagged,
        warmup_batches,
        measured_batches,
    );
    let protected = measure_once(
        make(seed),
        true,
        tlb_tagged,
        warmup_batches,
        measured_batches,
    );
    PerfRow { base, protected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_apps::volano::VolanoWorkload;

    #[test]
    fn protection_costs_more_and_misses_more() {
        for tagged in [false, true] {
            let row = protection_overhead_on(VolanoWorkload::new, 7, 5, 20, tagged);
            assert!(row.protected.cycles > row.base.cycles, "tagged={tagged}");
            assert!(
                row.protected.tlb_misses > row.base.tlb_misses,
                "tagged={tagged}"
            );
            assert!(row.protected.pt_switches > 0, "tagged={tagged}");
            assert_eq!(row.base.pt_switches, 0, "tagged={tagged}");
            if tagged {
                assert_eq!(
                    row.protected.tlb_flushes, 0,
                    "tag switches must keep the flush off the syscall path"
                );
                assert!(row.protected.asid_switches > 0);
            } else {
                assert!(row.protected.tlb_flushes > 0);
            }
        }
    }
}
