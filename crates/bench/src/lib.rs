//! Benchmark harness for the Otherworld evaluation.
//!
//! One binary per table of the paper (`table2` .. `table6`) regenerates the
//! corresponding results on the simulator substrate, and the criterion
//! benches cover the microbenchmark claims (protection overhead,
//! resurrection speed and the copy-vs-map ablation, in-memory vs on-disk
//! checkpointing, handoff robustness 89%→97%).

#![forbid(unsafe_code)]

pub mod perf;
pub mod tables;

use ow_kernel::{Kernel, KernelConfig, RobustnessFixes};
use ow_simhw::{machine::MachineConfig, CostModel};

/// The machine used for performance evaluation (costs enabled).
pub fn eval_machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192, // 32 MiB
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: CostModel::default(),
    }
}

/// Boots an evaluation kernel with the full application registry.
pub fn boot_eval(user_protection: bool) -> Kernel {
    boot_eval_on(user_protection, true)
}

/// Boots an evaluation kernel on tagged or untagged TLB hardware (Table 3
/// compares the two).
pub fn boot_eval_on(user_protection: bool, tlb_tagged: bool) -> Kernel {
    let machine = ow_kernel::standard_machine(MachineConfig {
        tlb_tagged,
        ..eval_machine_config()
    });
    let config = KernelConfig {
        user_protection,
        fixes: RobustnessFixes::default(),
        ..KernelConfig::default()
    };
    Kernel::boot_cold(machine, config, ow_apps::full_registry()).expect("boot")
}

/// Parses `--morph cold|warm` from a bin's argument list (default cold),
/// selecting the morph half of the four-configuration recovery matrix.
pub fn morph_from_args(args: &[String]) -> ow_core::MorphMode {
    match args
        .iter()
        .position(|a| a == "--morph")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("cold") => ow_core::MorphMode::Cold,
        Some("warm") => ow_core::MorphMode::Warm,
        Some(other) => {
            eprintln!("unknown --morph {other} (use cold|warm)");
            std::process::exit(2);
        }
    }
}

/// Parses `--strategy copy|map|lazy` from a bin's argument list (default
/// copy), selecting the page-materialization half of the recovery matrix.
pub fn strategy_from_args(args: &[String]) -> ow_core::ResurrectionStrategy {
    match args
        .iter()
        .position(|a| a == "--strategy")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("copy") => ow_core::ResurrectionStrategy::CopyPages,
        Some("map") => ow_core::ResurrectionStrategy::MapPages,
        Some("lazy") => ow_core::ResurrectionStrategy::Lazy,
        Some(other) => {
            eprintln!("unknown --strategy {other} (use copy|map|lazy)");
            std::process::exit(2);
        }
    }
}

/// Formats a table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!(" {c:<w$} |", w = w));
    }
    out
}

/// Prints a full table with a header rule.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    println!("\n{title}");
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", row(&head, &widths));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", row(&rule, &widths));
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

/// A minimal host-time measurement harness for the `benches/` targets.
///
/// The criterion dependency would make the offline build reach for the
/// network, and these benches only need "run N times, report wall time":
/// the paper's actual numbers all come from *simulated* cycles via the
/// `tableN` binaries.
pub mod timing {
    use std::time::Instant;

    /// Runs `f` `iters` times (after one warmup) and prints min/mean/max
    /// wall time per iteration.
    pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mean = samples.iter().sum::<std::time::Duration>() / iters;
        println!("{name:<40} min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}");
    }

    /// Iteration count: 10 by default, overridable via `OW_BENCH_ITERS`.
    pub fn iters() -> u32 {
        std::env::var("OW_BENCH_ITERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
    }
}
