//! Benchmark harness for the Otherworld evaluation.
//!
//! One binary per table of the paper (`table2` .. `table6`) regenerates the
//! corresponding results on the simulator substrate, and the criterion
//! benches cover the microbenchmark claims (protection overhead,
//! resurrection speed and the copy-vs-map ablation, in-memory vs on-disk
//! checkpointing, handoff robustness 89%→97%).

pub mod perf;
pub mod tables;

use ow_kernel::{Kernel, KernelConfig, RobustnessFixes};
use ow_simhw::{machine::MachineConfig, CostModel};

/// The machine used for performance evaluation (costs enabled).
pub fn eval_machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192, // 32 MiB
        cpus: 2,
        tlb_entries: 64,
        cost: CostModel::default(),
    }
}

/// Boots an evaluation kernel with the full application registry.
pub fn boot_eval(user_protection: bool) -> Kernel {
    let machine = ow_kernel::standard_machine(eval_machine_config());
    let config = KernelConfig {
        user_protection,
        fixes: RobustnessFixes::default(),
        ..KernelConfig::default()
    };
    Kernel::boot_cold(machine, config, ow_apps::full_registry()).expect("boot")
}

/// Formats a table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!(" {c:<w$} |", w = w));
    }
    out
}

/// Prints a full table with a header rule.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    println!("\n{title}");
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", row(&head, &widths));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", row(&rule, &widths));
    for r in rows {
        println!("{}", row(r, &widths));
    }
}
