//! Shared routines behind the `tableN` binaries, kept in the library so the
//! integration tests can assert on the numbers.

use crate::{boot_eval, perf};
use ow_apps::{make_workload, workload::TABLE5_APPS, Workload};
use ow_core::{
    microreboot, MicrorebootReport, MorphMode, OtherworldConfig, PolicySource, ResurrectionPolicy,
    ResurrectionStrategy,
};
use ow_faultinject::{
    run_campaign, run_recovery_campaign, CampaignConfig, CampaignResult, Outcome,
    RecoveryCampaignConfig, RecoveryCampaignResult, RecoverySide,
};
use ow_kernel::{Kernel, PanicCause, RobustnessFixes, SpawnSpec};
use ow_trace::json::Value;

/// One TLB-hardware variant of a Table 3 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Table3Cell {
    /// Increase in TLB misses (percent).
    pub tlb_increase_pct: f64,
    /// Performance overhead (percent).
    pub overhead_pct: f64,
    /// Full TLB flushes in the protected measured window.
    pub flushes: u64,
    /// ASID tag switches in the protected measured window.
    pub asid_switches: u64,
    /// Single-page invalidations in the protected measured window.
    pub invalidations: u64,
}

/// Table 3 row: protection overhead for one workload, on tagged (ASID)
/// and untagged (flush-per-switch) TLB hardware.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Tagged-TLB hardware (the default machine).
    pub tagged: Table3Cell,
    /// Untagged hardware (the paper's measurement conditions).
    pub untagged: Table3Cell,
}

/// The three applications of the paper's Table 3.
const TABLE3_APPS: [(&str, &str); 3] = [
    ("MySQL", "mysqld"),
    ("Apache", "httpd"),
    ("Volano", "volano"),
];

fn table3_cell(app: &str, measured_batches: u32, tlb_tagged: bool) -> Table3Cell {
    let row = perf::protection_overhead_on(
        |seed| make_workload(app, seed),
        11,
        8,
        measured_batches,
        tlb_tagged,
    );
    Table3Cell {
        tlb_increase_pct: row.tlb_miss_increase_pct(),
        overhead_pct: row.overhead_pct(),
        flushes: row.protected.tlb_flushes,
        asid_switches: row.protected.asid_switches,
        invalidations: row.protected.invalidations,
    }
}

/// Computes Table 3 (protection overhead for MySQL, Apache, Volano).
pub fn table3(measured_batches: u32) -> Vec<Table3Row> {
    table3_jobs(measured_batches, 1)
}

/// Computes Table 3 with the six app × hardware measurements sharded over
/// `jobs` workers (0 = auto). Deterministic: the output is byte-identical
/// for any worker count.
pub fn table3_jobs(measured_batches: u32, jobs: usize) -> Vec<Table3Row> {
    let coords: Vec<(usize, bool)> = (0..TABLE3_APPS.len())
        .flat_map(|a| [(a, true), (a, false)])
        .collect();
    let cells = ow_faultinject::parallel_map(jobs, &coords, |&(a, tagged), _| {
        table3_cell(TABLE3_APPS[a].1, measured_batches, tagged)
    });
    TABLE3_APPS
        .iter()
        .enumerate()
        .map(|(a, &(label, _))| Table3Row {
            name: label,
            tagged: cells[a * 2].clone().expect("table3 cell"),
            untagged: cells[a * 2 + 1].clone().expect("table3 cell"),
        })
        .collect()
}

fn table3_cell_json(c: &Table3Cell) -> Value {
    Value::obj([
        ("tlb_miss_increase_pct", Value::from(c.tlb_increase_pct)),
        ("overhead_pct", Value::from(c.overhead_pct)),
        ("flushes", Value::from(c.flushes)),
        ("asid_switches", Value::from(c.asid_switches)),
        ("invalidations", Value::from(c.invalidations)),
    ])
}

/// Machine-readable Table 3 export (the committed `BENCH_table3.json`
/// perf-trajectory artifact).
pub fn table3_json(rows: &[Table3Row]) -> Value {
    let row_values: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::obj([
                ("application", Value::from(r.name)),
                ("tagged", table3_cell_json(&r.tagged)),
                ("untagged", table3_cell_json(&r.untagged)),
            ])
        })
        .collect();
    Value::obj([
        ("schema_version", Value::from(1u64)),
        ("bench", Value::from("table3")),
        ("rows", Value::Array(row_values)),
    ])
}

/// Table 4 row: resurrection read sizes for one application.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Application name.
    pub name: &'static str,
    /// Dead-kernel bytes read to resurrect the application.
    pub kernel_bytes: u64,
    /// Share of those bytes that were page tables.
    pub page_table_pct: f64,
    /// The application's virtual-footprint bytes (for the §4 ratio).
    pub footprint_bytes: u64,
}

/// Runs one app to steady state, crashes the kernel, and measures what the
/// crash kernel had to read (Table 4).
pub fn table4(batches_per_app: u32) -> Vec<Table4Row> {
    TABLE5_APPS
        .iter()
        .map(|&app| {
            let mut k = boot_eval(false);
            let mut w = make_workload(app, 4);
            let pid = w.setup(&mut k);
            for _ in 0..batches_per_app {
                w.drive(&mut k, pid);
            }
            let (present, swapped) = k.page_census(pid).unwrap_or((0, 0));
            let footprint = (present + swapped) * ow_simhw::PAGE_BYTES;
            k.do_panic(PanicCause::Oops("table4 measurement"));
            let config = OtherworldConfig {
                policy: PolicySource::Inline(ResurrectionPolicy::only([w.name()])),
                ..OtherworldConfig::default()
            };
            let (_k2, report) = microreboot(k, &config).expect("microreboot");
            // Table 4 is only credible if its byte accounting agrees with
            // the layout registry: every fixed-size bucket must hold a
            // whole number of registered records.
            let violations = report.stats.registry_check();
            assert!(
                violations.is_empty(),
                "Table 4 accounting disagrees with the layout registry: {violations:?}"
            );
            let pr = report.proc_named(w.name()).expect("resurrected");
            Table4Row {
                name: app_label(app),
                kernel_bytes: pr.bytes_read,
                page_table_pct: if pr.bytes_read == 0 {
                    0.0
                } else {
                    100.0 * pr.pt_bytes as f64 / pr.bytes_read as f64
                },
                footprint_bytes: footprint,
            }
        })
        .collect()
}

fn app_label(app: &str) -> &'static str {
    match app {
        "vi" => "vi",
        "joe" => "JOE",
        "mysqld" => "MySQL",
        "httpd" => "Apache",
        "blcr" => "BLCR",
        _ => "?",
    }
}

/// Default campaign seed for the pinned Table 5 / ablation numbers in
/// EXPERIMENTS.md (override with `--seed`).
pub const TABLE5_SEED: u64 = 0x07e5_2012;

/// Default campaign seed for the pinned recovery-robustness numbers.
pub const RECOVERY_SEED: u64 = 0x5ec0_4e4a;

/// Table 5 row: campaign results for one application, with and without
/// user-space protection (the corruption column reports both).
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Application name.
    pub name: &'static str,
    /// Campaign without protection (main columns).
    pub unprotected: CampaignResult,
    /// Campaign with protection (first number of the corruption column).
    pub protected: CampaignResult,
}

/// Runs the Table 5 campaigns. `jobs` is the sharded engine's worker count
/// (`0` = auto); every value produces byte-identical results.
pub fn table5(
    experiments: usize,
    fixes: RobustnessFixes,
    seed: u64,
    jobs: usize,
) -> Vec<Table5Row> {
    table5_in(
        experiments,
        fixes,
        seed,
        jobs,
        MorphMode::Cold,
        ResurrectionStrategy::CopyPages,
    )
}

/// [`table5`] under an explicit recovery configuration — the safety half of
/// the warm-morph claim reruns the whole corruption campaign in each of the
/// four (morph × strategy) configurations and expects identical outcome
/// shapes.
pub fn table5_in(
    experiments: usize,
    fixes: RobustnessFixes,
    seed: u64,
    jobs: usize,
    morph: MorphMode,
    strategy: ResurrectionStrategy,
) -> Vec<Table5Row> {
    TABLE5_APPS
        .iter()
        .map(|&app| {
            let base_cfg = CampaignConfig {
                effective_experiments: experiments,
                fixes,
                seed,
                jobs,
                morph,
                strategy,
                ..CampaignConfig::default()
            };
            let unprotected = run_campaign(|s| make_workload(app, s), &base_cfg);
            let prot_cfg = CampaignConfig {
                user_protection: true,
                ..base_cfg
            };
            let protected = run_campaign(|s| make_workload(app, s), &prot_cfg);
            Table5Row {
                name: app_label(app),
                unprotected,
                protected,
            }
        })
        .collect()
}

fn outcome_label(o: &Outcome) -> &'static str {
    match o {
        Outcome::NoCrash => "no_crash",
        Outcome::Success => "success",
        Outcome::BootFailure(_) => "boot_failure",
        Outcome::ResurrectFailure(_) => "resurrect_failure",
        Outcome::DataCorruption(_) => "data_corruption",
    }
}

fn campaign_json(c: &CampaignResult) -> Value {
    let records: Vec<Value> = c
        .records
        .iter()
        .map(|r| {
            Value::obj([
                ("outcome", Value::from(outcome_label(&r.outcome))),
                ("cause", Value::from(r.cause.as_str())),
            ])
        })
        .collect();
    Value::obj([
        ("effective", Value::from(c.effective as u64)),
        ("discarded", Value::from(c.discarded as u64)),
        ("success", Value::from(c.success as u64)),
        ("boot_failure", Value::from(c.boot_failure as u64)),
        ("resurrect_failure", Value::from(c.resurrect_failure as u64)),
        ("data_corruption", Value::from(c.data_corruption as u64)),
        ("success_pct", Value::from(c.success_pct())),
        ("boot_failure_pct", Value::from(c.boot_failure_pct())),
        (
            "resurrect_failure_pct",
            Value::from(c.resurrect_failure_pct()),
        ),
        ("data_corruption_pct", Value::from(c.data_corruption_pct())),
        ("wild_writes_landed", Value::from(c.damage.landed as u64)),
        ("wild_writes_trapped", Value::from(c.damage.trapped as u64)),
        ("wild_writes_blocked", Value::from(c.damage.blocked as u64)),
        (
            "wild_write_victims",
            Value::obj(
                c.damage
                    .victims
                    .iter()
                    .map(|(&name, &n)| (name, Value::from(n as u64))),
            ),
        ),
        ("flight_events", c.flight.to_json()),
        ("records", Value::Array(records)),
    ])
}

/// JSON form of the Table 5 rows: every campaign's aggregate counts plus
/// each effective experiment's trace-derived cause annotation, and — as a
/// worked example of the flight-recorder pipeline — one full recovered
/// flight record (events + metrics) from a seeded clean-panic microreboot.
pub fn table5_json(rows: &[Table5Row]) -> Value {
    let row_values: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::obj([
                ("application", Value::from(r.name)),
                ("unprotected", campaign_json(&r.unprotected)),
                ("protected", campaign_json(&r.protected)),
            ])
        })
        .collect();
    let sample = one_microreboot("vi", 6, &OtherworldConfig::default());
    Value::obj([
        ("schema_version", Value::from(1u64)),
        ("bench", Value::from("table5")),
        ("rows", Value::Array(row_values)),
        ("sample_flight", sample.flight.to_json()),
        ("sample_timings", sample.timings_json()),
    ])
}

/// Runs the recovery-robustness campaign (the resurrection-supervisor
/// ablation: identical seeded recovery-time faults, supervisor on vs off).
/// `jobs` is the sharded engine's worker count (`0` = auto).
pub fn recovery_table(experiments: usize, seed: u64, jobs: usize) -> RecoveryCampaignResult {
    run_recovery_campaign(&RecoveryCampaignConfig {
        experiments,
        seed,
        jobs,
    })
}

fn recovery_side_json(s: &RecoverySide, experiments: usize) -> Value {
    let survived_pct = if experiments == 0 {
        0.0
    } else {
        100.0 * s.survived() as f64 / experiments as f64
    };
    Value::obj([
        ("rolled_back", Value::from(s.rolled_back as u64)),
        ("full_resurrection", Value::from(s.full as u64)),
        ("degraded", Value::from(s.degraded as u64)),
        ("clean_restart", Value::from(s.clean_restart as u64)),
        ("gen2_restart", Value::from(s.gen2 as u64)),
        (
            "per_process_failure",
            Value::from(s.per_process_failure as u64),
        ),
        ("whole_failure", Value::from(s.whole_failure as u64)),
        ("survived", Value::from(s.survived() as u64)),
        ("survived_pct", Value::from(survived_pct)),
        ("contained_panics", Value::from(s.contained_panics)),
        ("watchdog_fires", Value::from(s.watchdog_fires)),
    ])
}

/// JSON form of the recovery-robustness table: both ablation sides plus the
/// per-experiment paired records.
pub fn recovery_json(r: &RecoveryCampaignResult) -> Value {
    let records: Vec<Value> = r
        .records
        .iter()
        .map(|rec| {
            Value::obj([
                ("fault", Value::from(rec.fault.name())),
                ("with_supervisor", Value::from(rec.with_supervisor.name())),
                (
                    "without_supervisor",
                    Value::from(rec.without_supervisor.name()),
                ),
                ("with_rollback", Value::from(rec.with_rollback.name())),
            ])
        })
        .collect();
    Value::obj([
        ("schema_version", Value::from(2u64)),
        ("bench", Value::from("recovery")),
        ("experiments", Value::from(r.experiments as u64)),
        (
            "with_supervisor",
            recovery_side_json(&r.with_supervisor, r.experiments),
        ),
        (
            "without_supervisor",
            recovery_side_json(&r.without_supervisor, r.experiments),
        ),
        (
            "with_rollback",
            recovery_side_json(&r.with_rollback, r.experiments),
        ),
        ("panic_escapes", Value::from(r.panic_escapes as u64)),
        ("records", Value::Array(records)),
    ])
}

/// Table 6 row: cold-boot vs service-interruption time for one workload.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Workload name.
    pub name: &'static str,
    /// Seconds from power-on to the workload being operational.
    pub boot_seconds: f64,
    /// Seconds from the kernel failure to the workload being operational
    /// again.
    pub interruption_seconds: f64,
}

fn shell_operational(k: &mut Kernel, term: u32) -> bool {
    // Operational = the shell echoes a probe keystroke.
    let _ = k.term_input(term, b"k");
    for _ in 0..16 {
        k.run_step();
    }
    k.term_screen(term)
        .map(|s| s.contains(&b'k'))
        .unwrap_or(false)
}

/// One Table 6 recovery configuration: a (morph, strategy) pair — one
/// column of the warm-morph matrix.
#[derive(Debug, Clone, Copy)]
pub struct Table6Mode {
    /// Stable column name (`cold_eager` .. `rollback`).
    pub name: &'static str,
    /// Morph mode the microreboot runs under.
    pub morph: ow_core::MorphMode,
    /// Page materialization strategy.
    pub strategy: ow_core::ResurrectionStrategy,
    /// Whether rollback-in-place (rung 0) is enabled. The morph/strategy
    /// pair then only governs the fall-through path, which a healthy
    /// checkpoint never takes.
    pub rollback: bool,
}

/// The recovery matrix: the paper's cold/eager pipeline, each optimization
/// alone, both together, and rollback-in-place (rung 0) on top.
pub const TABLE6_MODES: [Table6Mode; 5] = [
    Table6Mode {
        name: "cold_eager",
        morph: ow_core::MorphMode::Cold,
        strategy: ow_core::ResurrectionStrategy::CopyPages,
        rollback: false,
    },
    Table6Mode {
        name: "cold_lazy",
        morph: ow_core::MorphMode::Cold,
        strategy: ow_core::ResurrectionStrategy::Lazy,
        rollback: false,
    },
    Table6Mode {
        name: "warm_eager",
        morph: ow_core::MorphMode::Warm,
        strategy: ow_core::ResurrectionStrategy::CopyPages,
        rollback: false,
    },
    Table6Mode {
        name: "warm_lazy",
        morph: ow_core::MorphMode::Warm,
        strategy: ow_core::ResurrectionStrategy::Lazy,
        rollback: false,
    },
    Table6Mode {
        name: "rollback",
        morph: ow_core::MorphMode::Warm,
        strategy: ow_core::ResurrectionStrategy::Lazy,
        rollback: true,
    },
];

/// The Table 6 workloads, smallest to largest footprint.
pub const TABLE6_APPS: [&str; 3] = ["shell", "mysqld", "httpd"];

/// One measured cell of the Table 6 matrix.
#[derive(Debug, Clone)]
pub struct Table6Cell {
    /// The recovery configuration measured.
    pub mode: Table6Mode,
    /// Seconds from the kernel failure to the workload being operational.
    pub interruption_seconds: f64,
    /// What the morph adopted (all false in the cold columns).
    pub adoption: ow_core::AdoptionSummary,
}

/// One application row of the Table 6 matrix: the cold-boot baseline plus
/// the service interruption under each of [`TABLE6_MODES`].
#[derive(Debug, Clone)]
pub struct Table6MatrixRow {
    /// Application name.
    pub name: &'static str,
    /// Seconds from power-on to the workload being operational.
    pub boot_seconds: f64,
    /// Per-mode interruption, in [`TABLE6_MODES`] order.
    pub cells: Vec<Table6Cell>,
}

/// Measures Table 6 for `app` (`"shell"`, `"mysqld"`, or `"httpd"`).
pub fn table6_row(app: &'static str) -> Table6Row {
    table6_row_with(app, false)
}

/// Table 6 with the §7 fast-crash-boot optimization toggled (legacy
/// cold/eager pipeline).
pub fn table6_row_with(app: &'static str, fast_crash_boot: bool) -> Table6Row {
    let mode = TABLE6_MODES[0];
    let (boot_seconds, cell) = table6_measure(app, fast_crash_boot, mode);
    Table6Row {
        name: table6_label(app),
        boot_seconds,
        interruption_seconds: cell.interruption_seconds,
    }
}

fn table6_label(app: &str) -> &'static str {
    match app {
        "shell" => "shell",
        "mysqld" => "MySQL",
        "httpd" => "Apache",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

/// Runs one (app, mode) simulation: cold boot to operational, steady
/// state, kernel failure, microreboot under `mode`, back to operational.
pub fn table6_measure(
    app: &'static str,
    fast_crash_boot: bool,
    mode: Table6Mode,
) -> (f64, Table6Cell) {
    // --- Cold boot to operational ---
    let mut k = boot_eval(false);
    let (boot_seconds, mut w_opt, pid) = if app == "shell" {
        let term = k.create_terminal().expect("terminal");
        let image = k.registry.get("shell").expect("shell registered");
        let mut spec = SpawnSpec::new("shell", Box::new(ow_apps::shell::Shell));
        spec.term = Some(term);
        let pid = k.spawn(spec).expect("spawn shell");
        let fresh = {
            let mut api = ow_kernel::syscall::KernelApi::new(&mut k, pid);
            (image.fresh)(&mut api, &[])
        };
        k.proc_mut(pid).expect("pid").program = Some(fresh);
        assert!(shell_operational(&mut k, term));
        (k.seconds(), None, pid)
    } else {
        let mut w = make_workload(app, 21);
        let pid = w.setup(&mut k);
        w.drive(&mut k, pid); // first request served
        (k.seconds(), Some(w), pid)
    };

    // --- Steady state, then failure ---
    if let Some(w) = w_opt.as_mut() {
        for _ in 0..5 {
            w.drive(&mut k, pid);
        }
    }
    let t_fail = k.seconds();
    k.do_panic(PanicCause::Oops("table6 failure"));
    let config = OtherworldConfig {
        morph: mode.morph,
        strategy: mode.strategy,
        // Table 6 resurrects every resource class so the apps' crash
        // procedures can take the §3.4 continue-in-place route; the
        // interruption then measures the recovery pipeline, not an
        // app-level dump-and-restart tail common to all four modes.
        resurrect_sockets: true,
        resurrect_pipes: true,
        rollback: mode.rollback,
        crash_kernel: ow_kernel::KernelConfig {
            fast_crash_boot,
            ..ow_kernel::KernelConfig::default()
        },
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = microreboot(k, &config).expect("microreboot");

    // --- Back to operational ---
    if app == "shell" {
        let new_pid = k2.procs.first().map(|p| p.pid).expect("shell resurrected");
        let term = k2.read_desc(new_pid).map(|d| d.term_id).unwrap_or(0);
        assert!(shell_operational(&mut k2, term));
    } else if let Some(w) = w_opt.as_mut() {
        let new_pid = k2.procs.first().map(|p| p.pid).expect("app alive");
        w.reconnect(&mut k2, new_pid);
        for _ in 0..8 {
            k2.run_step();
        }
        w.drive(&mut k2, new_pid);
    }
    let interruption_seconds = k2.seconds() - t_fail;

    (
        boot_seconds,
        Table6Cell {
            mode,
            interruption_seconds,
            adoption: report.adoption,
        },
    )
}

/// All Table 6 rows (legacy cold/eager pipeline).
pub fn table6() -> Vec<Table6Row> {
    TABLE6_APPS.into_iter().map(table6_row).collect()
}

/// Table 6 with the fast-crash-boot optimization (§7 future work).
pub fn table6_fast() -> Vec<Table6Row> {
    TABLE6_APPS
        .into_iter()
        .map(|app| table6_row_with(app, true))
        .collect()
}

/// The full warm-morph matrix: every app under every recovery mode. Each
/// (app, mode) cell is an independent deterministic simulation, so the
/// sharded engine reassembles the matrix byte-identically for any worker
/// count.
pub fn table6_matrix(jobs: usize) -> Vec<Table6MatrixRow> {
    let coords: Vec<(usize, usize)> = (0..TABLE6_APPS.len())
        .flat_map(|a| (0..TABLE6_MODES.len()).map(move |m| (a, m)))
        .collect();
    let measured = ow_faultinject::parallel_map(jobs, &coords, |&(a, m), _| {
        table6_measure(TABLE6_APPS[a], false, TABLE6_MODES[m])
    });
    TABLE6_APPS
        .iter()
        .enumerate()
        .map(|(a, &app)| {
            let mut boot_seconds = 0.0;
            let cells = (0..TABLE6_MODES.len())
                .map(|m| {
                    let (boot, cell) = measured[a * TABLE6_MODES.len() + m]
                        .clone()
                        .expect("table6 cell");
                    boot_seconds = boot;
                    cell
                })
                .collect();
            Table6MatrixRow {
                name: table6_label(app),
                boot_seconds,
                cells,
            }
        })
        .collect()
}

fn mode_cell<'a>(row: &'a Table6MatrixRow, name: &str) -> &'a Table6Cell {
    row.cells
        .iter()
        .find(|c| c.mode.name == name)
        .expect("mode cell")
}

/// The headline number: how much faster warm+lazy recovers the largest
/// app (the last of [`TABLE6_APPS`]) than the paper's cold/eager pipeline.
pub fn table6_headline(rows: &[Table6MatrixRow]) -> f64 {
    let row = rows.last().expect("rows");
    let cold = mode_cell(row, "cold_eager").interruption_seconds;
    let warm = mode_cell(row, "warm_lazy").interruption_seconds;
    if warm > 0.0 {
        cold / warm
    } else {
        f64::INFINITY
    }
}

/// The rung-0 headline: how much lower rollback-in-place drives the
/// largest app's interruption than the paper's cold/eager microreboot.
pub fn table6_rollback_headline(rows: &[Table6MatrixRow]) -> f64 {
    let row = rows.last().expect("rows");
    let cold = mode_cell(row, "cold_eager").interruption_seconds;
    let rb = mode_cell(row, "rollback").interruption_seconds;
    if rb > 0.0 {
        cold / rb
    } else {
        f64::INFINITY
    }
}

fn adoption_json(a: &ow_core::AdoptionSummary) -> Value {
    Value::obj([
        ("frames", Value::from(a.frames)),
        ("swap", Value::from(a.swap)),
        ("cache", Value::from(a.cache)),
    ])
}

/// JSON form of the Table 6 matrix, pinned by `BENCH_table6.json`.
pub fn table6_json(rows: &[Table6MatrixRow]) -> Value {
    let row_values: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::obj([
                ("application", Value::from(r.name)),
                ("boot_seconds", Value::from(r.boot_seconds)),
                (
                    "modes",
                    Value::obj(r.cells.iter().map(|c| {
                        (
                            c.mode.name,
                            Value::obj([
                                ("interruption_seconds", Value::from(c.interruption_seconds)),
                                ("adoption", adoption_json(&c.adoption)),
                            ]),
                        )
                    })),
                ),
            ])
        })
        .collect();
    Value::obj([
        ("schema_version", Value::from(2u64)),
        ("bench", Value::from("table6")),
        ("rows", Value::Array(row_values)),
        ("headline_speedup", Value::from(table6_headline(rows))),
        (
            "rollback_speedup",
            Value::from(table6_rollback_headline(rows)),
        ),
    ])
}

/// Reusable: one microreboot of a driven app, returning the report (used by
/// criterion benches).
pub fn one_microreboot(app: &str, batches: u32, config: &OtherworldConfig) -> MicrorebootReport {
    let mut k = boot_eval(false);
    let mut w = make_workload(app, 17);
    let pid = w.setup(&mut k);
    for _ in 0..batches {
        w.drive(&mut k, pid);
    }
    k.do_panic(PanicCause::Oops("bench"));
    let (_k2, report) = microreboot(k, config).expect("microreboot");
    report
}
