//! Bench: BLCR checkpointing, in-memory vs to-disk (§5.4).
//!
//! The simulated-cycle ratio (the paper's ≥10x claim) is printed by
//! `cargo run -p ow-bench --bin claims`; this bench tracks the host cost of
//! the two checkpoint paths through the whole kernel stack.

use ow_apps::blcr::{BlcrWorkload, CkptMode, CKPT_PERIOD};
use ow_apps::Workload;
use ow_bench::timing;

fn run_checkpoint_cycle(mode: CkptMode) {
    let mut k = ow_bench::boot_eval(false);
    let mut w = BlcrWorkload::new(16, mode);
    let pid = w.setup(&mut k);
    // Two full checkpoint periods.
    for _ in 0..16 * CKPT_PERIOD * 2 {
        k.run_step();
    }
    let _ = pid;
    assert!(k.panicked.is_none());
}

fn main() {
    let iters = timing::iters();
    for (name, mode) in [("memory", CkptMode::Memory), ("disk", CkptMode::Disk)] {
        timing::bench(&format!("checkpoint/{name}"), iters, || {
            run_checkpoint_cycle(mode)
        });
    }
}
