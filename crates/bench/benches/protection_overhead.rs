//! Criterion bench: cost of driving syscall-heavy workloads with and
//! without the memory-protected mode (Table 3's mechanism).
//!
//! Criterion measures host wall-time of the simulation; the paper's
//! overhead percentages come from *simulated* cycles and are produced by
//! `cargo run -p ow-bench --bin table3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ow_apps::{make_workload, Workload};

fn drive_batches(app: &str, protection: bool, batches: u32) {
    let mut k = ow_bench::boot_eval(protection);
    let mut w = make_workload(app, 5);
    let pid = w.setup(&mut k);
    for _ in 0..batches {
        w.drive(&mut k, pid);
    }
    assert!(k.panicked.is_none());
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protection_overhead");
    g.sample_size(10);
    for app in ["mysqld", "volano"] {
        for protection in [false, true] {
            let label = format!(
                "{app}/{}",
                if protection { "protected" } else { "baseline" }
            );
            g.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(app, protection),
                |b, &(app, prot)| b.iter(|| drive_batches(app, prot, 30)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
