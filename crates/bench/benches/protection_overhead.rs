//! Bench: cost of driving syscall-heavy workloads with and without the
//! memory-protected mode (Table 3's mechanism).
//!
//! This measures host wall-time of the simulation; the paper's overhead
//! percentages come from *simulated* cycles and are produced by
//! `cargo run -p ow-bench --bin table3`.

use ow_apps::{make_workload, Workload};
use ow_bench::timing;

fn drive_batches(app: &str, protection: bool, batches: u32) {
    let mut k = ow_bench::boot_eval(protection);
    let mut w = make_workload(app, 5);
    let pid = w.setup(&mut k);
    for _ in 0..batches {
        w.drive(&mut k, pid);
    }
    assert!(k.panicked.is_none());
}

fn main() {
    let iters = timing::iters();
    for app in ["mysqld", "volano"] {
        for protection in [false, true] {
            let label = format!(
                "protection_overhead/{app}/{}",
                if protection { "protected" } else { "baseline" }
            );
            timing::bench(&label, iters, || drive_batches(app, protection, 30));
        }
    }
}
