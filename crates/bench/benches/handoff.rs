//! Bench: the panic/handoff path and crash-kernel boot — the part of
//! Otherworld that must work while the main kernel is dying.

use ow_bench::timing;
use ow_kernel::{Kernel, KernelConfig, PanicCause, PanicOutcome};
use ow_simhw::machine::MachineConfig;

fn machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: ow_simhw::CostModel::zero_io(),
    }
}

fn booted() -> Kernel {
    let machine = ow_kernel::standard_machine(machine_config());
    Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry()).expect("boot")
}

fn main() {
    let iters = timing::iters();

    timing::bench("handoff/panic_path", iters, || {
        let mut k = booted();
        let out = k.do_panic(PanicCause::Oops("bench"));
        assert!(matches!(out, PanicOutcome::Handoff(_)));
        k
    });

    timing::bench("handoff/crash_kernel_boot", iters, || {
        let mut k = booted();
        k.do_panic(PanicCause::Oops("bench"));
        let (k2, report) =
            ow_core::microreboot(k, &ow_core::OtherworldConfig::default()).expect("reboot");
        assert_eq!(report.generation, 1);
        k2
    });
}
