//! Criterion bench: the panic/handoff path and crash-kernel boot — the
//! part of Otherworld that must work while the main kernel is dying.

use criterion::{criterion_group, criterion_main, Criterion};
use ow_kernel::{Kernel, KernelConfig, PanicCause, PanicOutcome};
use ow_simhw::machine::MachineConfig;

fn machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192,
        cpus: 2,
        tlb_entries: 64,
        cost: ow_simhw::CostModel::zero_io(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("handoff");
    g.sample_size(10);

    g.bench_function("panic_path", |b| {
        b.iter_batched(
            || {
                let machine = ow_kernel::standard_machine(machine_config());
                Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry())
                    .expect("boot")
            },
            |mut k| {
                let out = k.do_panic(PanicCause::Oops("bench"));
                assert!(matches!(out, PanicOutcome::Handoff(_)));
                k
            },
            criterion::BatchSize::SmallInput,
        )
    });

    g.bench_function("crash_kernel_boot", |b| {
        b.iter_batched(
            || {
                let machine = ow_kernel::standard_machine(machine_config());
                let mut k =
                    Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry())
                        .expect("boot");
                k.do_panic(PanicCause::Oops("bench"));
                k
            },
            |k| {
                let (k2, report) =
                    ow_core::microreboot(k, &ow_core::OtherworldConfig::default()).expect("reboot");
                assert_eq!(report.generation, 1);
                k2
            },
            criterion::BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
