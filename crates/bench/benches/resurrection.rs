//! Criterion bench: a full microreboot (panic → crash-kernel boot →
//! resurrection → morph), comparing the page-copy strategy against the
//! page-mapping optimization of footnote 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ow_core::{OtherworldConfig, ResurrectionStrategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("microreboot");
    g.sample_size(10);
    for (name, strategy) in [
        ("copy_pages", ResurrectionStrategy::CopyPages),
        ("map_pages", ResurrectionStrategy::MapPages),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let config = OtherworldConfig {
                        strategy,
                        ..OtherworldConfig::default()
                    };
                    let report = ow_bench::tables::one_microreboot("vi", 20, &config);
                    assert!(report.all_succeeded());
                    report
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
