//! Bench: a full microreboot (panic → crash-kernel boot → resurrection →
//! morph), comparing the page-copy strategy against the page-mapping
//! optimization of footnote 3.

use ow_bench::timing;
use ow_core::{OtherworldConfig, ResurrectionStrategy};

fn main() {
    let iters = timing::iters();
    for (name, strategy) in [
        ("copy_pages", ResurrectionStrategy::CopyPages),
        ("map_pages", ResurrectionStrategy::MapPages),
    ] {
        timing::bench(&format!("microreboot/{name}"), iters, || {
            let config = OtherworldConfig {
                strategy,
                ..OtherworldConfig::default()
            };
            let report = ow_bench::tables::one_microreboot("vi", 20, &config);
            assert!(report.all_succeeded());
            report
        });
    }
}
