//! `ow-crashpoint`: compile-time-labeled crash points with thread-scoped
//! arming, for deterministic crash campaigns.
//!
//! The paper's Table 5 evaluation injects *random* wild writes, which
//! exercises the recovery machinery only by chance. This crate implements
//! the FIRST-style alternative: named markers compiled into the kernel and
//! the recovery engine (`crash_point!("kernel.swap.slot.write")`), plus a
//! tiny thread-local state machine that can either *count* how often each
//! marker is reached (a discovery pass) or *arm* exactly one marker and
//! panic deterministically the nth time execution reaches it. The campaign
//! orchestrator in `ow-faultinject` then enumerates every point × app ×
//! protection mode and drives each cell through the full
//! panic→handoff→crash-boot→resurrect→morph pipeline.
//!
//! Firing is a plain Rust `panic!` with the message `crash_point(<label>)`.
//! In the simulated-hardware world a host-level unwind *is* the crash
//! model: the simulated physical memory is frozen at the instant of the
//! panic, exactly as a real CPU would leave RAM behind, and the harness
//! catches the unwind with `ow_core::supervisor::contain` and proceeds to
//! the dead kernel's panic path (or, for points inside the recovery engine
//! itself, lets the resurrection supervisor's containment deal with it).
//!
//! Everything is thread-scoped on purpose: the campaign shards its matrix
//! over worker threads, and each cell — arming, firing, recovery — runs
//! entirely on one worker, so concurrent cells never observe each other.
//!
//! # Zero cost when disabled
//!
//! The [`crash_point!`] macro expands to a call only when the *consuming*
//! crate enables its own `crashpoint` feature; otherwise it expands to
//! nothing at all — no branch, no registry lookup, no thread-local access —
//! so default builds (and the paper-reproduction numbers they produce) are
//! bit-for-bit unaffected.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;

mod registry;

pub use registry::{spec, Area, PointSpec, REGISTRY};

/// Compiles to [`hit`] when the invoking crate enables its `crashpoint`
/// feature, and to nothing otherwise. The label must be a string literal so
/// `ow-lint` can enumerate every site statically.
#[macro_export]
macro_rules! crash_point {
    ($label:literal) => {
        #[cfg(feature = "crashpoint")]
        $crate::hit($label);
    };
}

/// What the thread's crash-point machinery is currently doing.
#[derive(Debug, Default)]
enum Mode {
    /// Markers are inert (the default, and the post-fire state).
    #[default]
    Off,
    /// Discovery pass: count every marker reached, never fire.
    Count,
    /// Fire (panic) the `nth` time `label` is reached.
    Armed { label: String, nth: u64, seen: u64 },
}

#[derive(Debug, Default)]
struct State {
    mode: Mode,
    counts: BTreeMap<&'static str, u64>,
    fired: Option<&'static str>,
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::default());
}

/// A crash point was reached. Called by the [`crash_point!`] expansion;
/// not meant to be invoked directly.
///
/// # Panics
///
/// Deliberately panics with the message `crash_point(<label>)` when this
/// thread armed `label` and this is the armed occurrence. The panic is the
/// injected crash; harnesses catch it with `supervisor::contain` and
/// recover the label via [`fired_label`].
pub fn hit(label: &'static str) {
    let fire = STATE.with(|s| {
        let mut s = s.borrow_mut();
        match &mut s.mode {
            Mode::Off => false,
            Mode::Count => {
                *s.counts.entry(label).or_insert(0) += 1;
                false
            }
            Mode::Armed {
                label: want,
                nth,
                seen,
            } => {
                if want != label {
                    return false;
                }
                *seen += 1;
                if *seen < *nth {
                    return false;
                }
                // One-shot: disarm before unwinding so the recovery code
                // that re-executes this path does not fire again.
                s.mode = Mode::Off;
                s.fired = Some(label);
                true
            }
        }
    });
    if fire {
        panic!("crash_point({label})");
    }
}

/// Arms `label` on this thread: the `nth` reach (1-based) panics.
pub fn arm(label: &str, nth: u64) {
    STATE.with(|s| {
        s.borrow_mut().mode = Mode::Armed {
            label: label.to_string(),
            nth: nth.max(1),
            seen: 0,
        }
    });
}

/// Switches this thread to the count-only discovery mode.
pub fn start_counting() {
    STATE.with(|s| s.borrow_mut().mode = Mode::Count);
}

/// Returns the counts accumulated by the discovery mode, sorted by label.
pub fn take_counts() -> Vec<(&'static str, u64)> {
    STATE
        .with(|s| std::mem::take(&mut s.borrow_mut().counts))
        .into_iter()
        .collect()
}

/// The label that fired on this thread since the last [`reset`], if any.
pub fn fired() -> Option<&'static str> {
    STATE.with(|s| s.borrow().fired)
}

/// Clears all crash-point state on this thread (mode, counts, fired flag).
pub fn reset() {
    STATE.with(|s| *s.borrow_mut() = State::default());
}

/// Parses a contained panic message back into the label that fired, if the
/// panic came from a crash point.
pub fn fired_label(msg: &str) -> Option<&str> {
    msg.strip_prefix("crash_point(")?.strip_suffix(')')
}

/// Whether `label` follows the `area.component.action` naming grammar:
/// at least three dot-separated segments, each `[a-z][a-z0-9_]*`.
pub fn label_grammar_ok(label: &str) -> bool {
    let segs: Vec<&str> = label.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            let mut chars = seg.chars();
            matches!(chars.next(), Some('a'..='z'))
                && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_labels_unique_and_grammatical() {
        let mut seen = HashSet::new();
        for p in REGISTRY {
            assert!(label_grammar_ok(p.label), "bad label grammar: {}", p.label);
            assert!(seen.insert(p.label), "duplicate label: {}", p.label);
        }
        assert!(
            REGISTRY.len() >= 25,
            "campaign needs >= 25 points, have {}",
            REGISTRY.len()
        );
    }

    #[test]
    fn disarmed_hit_is_inert() {
        reset();
        hit("kernel.swap.slot.write");
        assert_eq!(fired(), None);
        assert!(take_counts().is_empty());
    }

    #[test]
    fn counting_discovers_without_firing() {
        reset();
        start_counting();
        hit("kernel.swap.slot.write");
        hit("kernel.swap.slot.write");
        hit("kernel.swap.slot.read");
        let counts = take_counts();
        assert_eq!(
            counts,
            vec![("kernel.swap.slot.read", 1), ("kernel.swap.slot.write", 2)]
        );
        assert_eq!(fired(), None);
        reset();
    }

    #[test]
    fn armed_point_fires_once_on_nth_reach() {
        reset();
        arm("kernel.swap.slot.write", 2);
        hit("kernel.swap.slot.write"); // 1st reach: survives
        hit("kernel.swap.slot.read"); // different label: ignored
        let err = std::panic::catch_unwind(|| hit("kernel.swap.slot.write")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(fired_label(&msg), Some("kernel.swap.slot.write"));
        assert_eq!(fired(), Some("kernel.swap.slot.write"));
        // One-shot: the same point is inert after firing.
        hit("kernel.swap.slot.write");
        assert_eq!(fired(), Some("kernel.swap.slot.write"));
        reset();
    }

    #[test]
    fn fired_label_rejects_foreign_panics() {
        assert_eq!(
            fired_label("injected fault: resurrection engine panic"),
            None
        );
        assert_eq!(fired_label("crash_point(x"), None);
        assert_eq!(fired_label("crash_point(a.b.c)"), Some("a.b.c"));
    }

    #[cfg(feature = "crashpoint")]
    #[test]
    fn macro_fires_when_feature_enabled() {
        reset();
        arm("kernel.swap.slot.write", 1);
        let err = std::panic::catch_unwind(|| {
            crash_point!("kernel.swap.slot.write");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(fired_label(&msg), Some("kernel.swap.slot.write"));
        reset();
    }

    #[cfg(not(feature = "crashpoint"))]
    #[test]
    fn macro_is_noop_without_feature() {
        reset();
        arm("kernel.swap.slot.write", 1);
        crash_point!("kernel.swap.slot.write");
        assert_eq!(fired(), None);
        reset();
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(
            spec("kernel.swap.slot.write").map(|p| p.area),
            Some(Area::Swap)
        );
        assert_eq!(spec("no.such.label"), None);
    }
}
