//! The static registry of every labeled crash point in the workspace.
//!
//! Each entry names one `crash_point!` site threaded through the kernel or
//! the recovery engine. `ow-lint` cross-checks this file against the actual
//! call sites (unregistered and stale labels are findings), so the only
//! string literals allowed in this file are the labels themselves — the
//! lint reads the file's string table as the registry.

/// Which subsystem a crash point instruments. The campaign derives its
/// expected post-recovery outcome from the area (with a handful of
/// per-label overrides).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Area {
    /// Main-kernel syscall entry/exit (in-syscall marker discipline).
    Syscall,
    /// Page-cache write/flush/fsync paths.
    PageCache,
    /// Demand paging and swap-in fault handling.
    PageFault,
    /// Swap-out eviction in the VM layer.
    Vm,
    /// Raw swap-device slot I/O.
    Swap,
    /// The dead kernel's panic path (do_panic milestones).
    PanicPath,
    /// Crash-kernel boot.
    CrashBoot,
    /// Memory reclaim / crash-image install / morph-into-main.
    Kexec,
    /// Validated dead-memory readers in the crash kernel.
    Reader,
    /// Per-process resurrection stages.
    Resurrect,
    /// Supervisor ladder rung transitions and clean restart.
    Ladder,
    /// Generation-2 escalation.
    Supervisor,
    /// Restart-only (gen-2) recovery.
    Restart,
    /// Warm-morph validate-then-adopt (seal validation, swap-bitmap and
    /// page-cache adoption).
    Adopt,
    /// The main kernel's epoch-checkpoint writer (periodic and panic-path
    /// seals of the Table 4 record set).
    Checkpoint,
    /// Rollback-in-place: rung 0 of the ladder, running before the
    /// crash-kernel handoff (epoch validation, in-place apply, fallback).
    Rollback,
}

impl Area {
    /// Short stable name (used by campaign JSON).
    pub fn name(self) -> &'static str {
        match self {
            Area::Syscall => "syscall",
            Area::PageCache => "pagecache",
            Area::PageFault => "pagefault",
            Area::Vm => "vm",
            Area::Swap => "swap",
            Area::PanicPath => "panic_path",
            Area::CrashBoot => "crashboot",
            Area::Kexec => "kexec",
            Area::Reader => "reader",
            Area::Resurrect => "resurrect",
            Area::Ladder => "ladder",
            Area::Supervisor => "supervisor",
            Area::Restart => "restart",
            Area::Adopt => "adopt",
            Area::Checkpoint => "checkpoint",
            Area::Rollback => "rollback",
        }
    }
}

/// One registered crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    /// The `area.component.action` label compiled into the marker site.
    pub label: &'static str,
    /// The subsystem the marker instruments.
    pub area: Area,
}

const fn p(label: &'static str, area: Area) -> PointSpec {
    PointSpec { label, area }
}

/// Every labeled crash point, in pipeline order: main-kernel hot spots,
/// then the panic path, then the crash-kernel recovery side.
pub const REGISTRY: &[PointSpec] = &[
    // Main kernel: syscall boundary.
    p("kernel.syscall.enter.marked", Area::Syscall),
    p("kernel.syscall.exit.pre_clear", Area::Syscall),
    // Main kernel: page cache.
    p("kernel.pagecache.write.pre_commit", Area::PageCache),
    p("kernel.pagecache.fsync.flush", Area::PageCache),
    p("kernel.pagecache.flush.walk", Area::PageCache),
    // Main kernel: demand paging and swap.
    p("kernel.pagefault.demand.map", Area::PageFault),
    p("kernel.pagefault.swap.in", Area::PageFault),
    p("kernel.pagefault.lazy.pull", Area::PageFault),
    p("kernel.vm.swap.out", Area::Vm),
    p("kernel.swap.slot.write", Area::Swap),
    p("kernel.swap.slot.read", Area::Swap),
    // Main kernel: epoch-checkpoint writer (also reached by the panic
    // path's final seal).
    p("kernel.checkpoint.seal.write", Area::Checkpoint),
    // Dead kernel: panic path milestones.
    p("kernel.panic.path.entered", Area::PanicPath),
    p("kernel.panic.handoff.read", Area::PanicPath),
    p("kernel.panic.nmi.broadcast", Area::PanicPath),
    p("kernel.panic.seal.write", Area::PanicPath),
    p("kernel.panic.handoff.jump", Area::PanicPath),
    // Rollback-in-place (rung 0): runs on the dead-but-intact kernel
    // before any crash-kernel code.
    p("recovery.rollback.epoch.validate", Area::Rollback),
    p("recovery.rollback.state.apply", Area::Rollback),
    p("recovery.rollback.fallback.microreboot", Area::Rollback),
    // Crash kernel: boot and morph.
    p("kernel.crashboot.init.begin", Area::CrashBoot),
    p("kernel.kexec.reclaim.memory", Area::Kexec),
    p("kernel.kexec.adopt.frames", Area::Kexec),
    p("kernel.kexec.install.image", Area::Kexec),
    p("kernel.kexec.morph.main", Area::Kexec),
    // Crash kernel: validated readers.
    p("recovery.reader.header.validate", Area::Reader),
    p("recovery.reader.proclist.walk", Area::Reader),
    p("recovery.reader.vma.walk", Area::Reader),
    p("recovery.reader.filetable.read", Area::Reader),
    // Crash kernel: per-process resurrection stages.
    p("recovery.resurrect.descriptor.create", Area::Resurrect),
    p("recovery.resurrect.vma.rebuild", Area::Resurrect),
    p("recovery.resurrect.pages.materialize", Area::Resurrect),
    p("recovery.resurrect.files.reopen", Area::Resurrect),
    p("recovery.resurrect.terminal.restore", Area::Resurrect),
    p("recovery.resurrect.signals.restore", Area::Resurrect),
    p("recovery.resurrect.context.check", Area::Resurrect),
    // Crash kernel: warm-morph validate-then-adopt.
    p("recovery.adopt.seal.validate", Area::Adopt),
    p("recovery.adopt.swap.bitmap", Area::Adopt),
    p("recovery.adopt.cache.rebuild", Area::Adopt),
    // Crash kernel: supervisor ladder and escalation.
    p("recovery.ladder.rung.degrade", Area::Ladder),
    p("recovery.ladder.clean.restart", Area::Ladder),
    p("recovery.supervisor.gen2.escalate", Area::Supervisor),
    p("recovery.restart.names.read", Area::Restart),
];

/// Looks up a label in the registry.
pub fn spec(label: &str) -> Option<&'static PointSpec> {
    REGISTRY.iter().find(|p| p.label == label)
}
