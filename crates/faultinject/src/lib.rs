//! Synthetic kernel fault injection and the crash-experiment campaign (§6).
//!
//! Reimplements the evaluation methodology of the paper: the Rio/Nooks
//! fault model ([`faults`]) and the experiment runner ([`campaign`]) that
//! produces Table 5's outcome classification over hundreds of seeded,
//! reproducible experiments per application. Campaigns run on the
//! deterministic parallel engine ([`engine`]): experiments are sharded
//! across worker threads and merged in seed order, so every output is
//! byte-identical to the serial run for the same seed.

#![forbid(unsafe_code)]

pub mod campaign;
#[cfg(feature = "crashpoint")]
pub mod crashpoint;
pub mod engine;
pub mod faults;
pub mod recovery;

pub use campaign::{
    experiment_seed, fault_stream_seed, run_campaign, run_experiment, workload_stream_seed,
    CampaignConfig, CampaignResult, ExperimentRecord, Outcome,
};
#[cfg(feature = "crashpoint")]
pub use crashpoint::{
    campaign_crashpoints, cell_seed, crashpoints_json, discover_points, run_cell, CellOutcome,
    CellRecord, CellSpec, CrashpointCampaignConfig, CrashpointCampaignResult, CRASHPOINT_SEED,
};
pub use engine::{jobs_from_args, parallel_map, resolve_jobs, run_indexed};
pub use faults::{draw_fault, inject_batch, DamageReport, Fault, FaultKind, Manifestation};
pub use recovery::{
    run_recovery_campaign, run_recovery_experiment, RecoveryCampaignConfig, RecoveryCampaignResult,
    RecoveryFaultKind, RecoveryOutcome, RecoveryRecord, RecoverySide,
};
