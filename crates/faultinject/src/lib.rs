//! Synthetic kernel fault injection and the crash-experiment campaign (§6).
//!
//! Reimplements the evaluation methodology of the paper: the Rio/Nooks
//! fault model ([`faults`]) and the experiment runner ([`campaign`]) that
//! produces Table 5's outcome classification over hundreds of seeded,
//! reproducible experiments per application.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod faults;
pub mod recovery;

pub use campaign::{
    run_campaign, run_experiment, CampaignConfig, CampaignResult, ExperimentRecord, Outcome,
};
pub use faults::{draw_fault, inject_batch, DamageReport, Fault, FaultKind, Manifestation};
pub use recovery::{
    run_recovery_campaign, run_recovery_experiment, RecoveryCampaignConfig, RecoveryCampaignResult,
    RecoveryFaultKind, RecoveryOutcome, RecoveryRecord, RecoverySide,
};
