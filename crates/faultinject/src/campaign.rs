//! The fault-injection experiment runner (§6, Table 5).
//!
//! Each experiment: boot the system, start the application under its driven
//! workload (progress logged in the driver's shadow model — the "remote
//! log"), inject 30 faults at a random time, observe the outcome:
//!
//! * the faults never produce a kernel fault → discarded (~20%);
//! * the handoff fails → **failure to boot the crash kernel**;
//! * corruption prevents rebuilding the process → **failure to resurrect**;
//! * the application survives but its data diverges from the remote log →
//!   **data corruption**;
//! * otherwise → **successful resurrection**.

use crate::engine;
use crate::faults::{inject_batch, DamageReport};
use ow_apps::{VerifyResult, Workload};
use ow_core::{
    microreboot, MicrorebootFailure, MorphMode, OtherworldConfig, PolicySource, ResurrectionPolicy,
    ResurrectionStrategy,
};
use ow_kernel::{Kernel, KernelConfig, RobustnessFixes};
use ow_simhw::{machine::MachineConfig, stream_seed, CostModel, SimRng};
use ow_trace::{EventCounts, FlightRecord};

/// How many trailing trace events go into each outcome's cause annotation.
/// A full handoff emits six panic-path milestones, so ten leaves room for
/// the syscall that manifested the fault and the injections before it.
const CAUSE_TAIL_EVENTS: usize = 10;

/// Stream tag deriving the workload substream of an experiment seed.
pub const STREAM_WORKLOAD: u64 = 0x574f_524b_4c4f_4144; // "WORKLOAD"

/// Stream tag deriving the fault-injection substream of an experiment seed.
pub const STREAM_FAULT: u64 = 0x4641_554c_5453_4551; // "FAULTSEQ"

/// Collision-free per-experiment seed: the campaign base seed mixed with
/// the experiment index through [`stream_seed`]. Unlike the old
/// `seed.wrapping_add(i)` walk, campaigns launched with nearby base seeds
/// (e.g. table5's per-app/per-mode runs) can no longer overlap seed ranges
/// and silently share experiments.
pub fn experiment_seed(campaign_seed: u64, index: u64) -> u64 {
    stream_seed(campaign_seed, index)
}

/// The workload's random stream for an experiment. Independent of
/// [`fault_stream_seed`] by construction: the two consumers of campaign
/// randomness must never draw from correlated streams, or the injected
/// fault sequence tracks the workload's choices and biases the Table 5
/// outcome distributions.
pub fn workload_stream_seed(experiment_seed: u64) -> u64 {
    stream_seed(experiment_seed, STREAM_WORKLOAD)
}

/// The fault injector's random stream for an experiment (see
/// [`workload_stream_seed`]).
pub fn fault_stream_seed(experiment_seed: u64) -> u64 {
    stream_seed(experiment_seed, STREAM_FAULT)
}

/// Configuration of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Experiments that must end in a kernel fault (the paper observed 400
    /// per application).
    pub effective_experiments: usize,
    /// Faults injected per experiment (the paper injects 30).
    pub faults_per_experiment: u32,
    /// Memory-protected mode (Table 5's corruption column is reported with
    /// and without it).
    pub user_protection: bool,
    /// §6 robustness fixes (disable for the 89% ablation).
    pub fixes: RobustnessFixes,
    /// Campaign seed (experiment `i` uses [`experiment_seed`]`(seed, i)`).
    pub seed: u64,
    /// Workload batches to run before/around the injection point.
    pub max_batches: u32,
    /// Worker threads for the sharded engine: `0` = auto (`OW_JOBS`, then
    /// available parallelism). Results are byte-identical for every value.
    pub jobs: usize,
    /// Morph mode for every experiment's microreboot (Table 6 reruns the
    /// campaign warm to prove adoption never changes an outcome).
    pub morph: MorphMode,
    /// Page materialization strategy for every experiment's microreboot.
    pub strategy: ResurrectionStrategy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            effective_experiments: 400,
            faults_per_experiment: 30,
            user_protection: false,
            fixes: RobustnessFixes::default(),
            seed: 0x07e5_2010,
            max_batches: 60,
            jobs: 0,
            morph: MorphMode::Cold,
            strategy: ResurrectionStrategy::CopyPages,
        }
    }
}

/// Outcome of one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The injected faults never crashed the kernel (discarded).
    NoCrash,
    /// Application resurrected and its data verified intact.
    Success,
    /// Control never reached the crash kernel.
    BootFailure(String),
    /// The crash kernel ran but the application could not be resurrected.
    ResurrectFailure(String),
    /// The application survived but its data diverged from the remote log.
    DataCorruption(String),
}

/// One classified experiment: the Table 5 outcome plus a trace-derived
/// cause annotation — the tail of the kernel's flight record, recovered
/// from the trace region exactly the way the crash kernel recovers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentRecord {
    /// Table 5 classification.
    pub outcome: Outcome,
    /// Last few flight-record events, oldest first (e.g.
    /// `"fault_injected(kind=4, writes=2) -> panic:entered -> panic:halted"`).
    pub cause: String,
    /// Per-kind tally of the experiment's recovered flight record; the
    /// campaign merger folds these into [`CampaignResult::flight`] in seed
    /// order.
    pub events: EventCounts,
}

/// Aggregated campaign counts (one Table 5 row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignResult {
    /// Effective (crashed) experiments.
    pub effective: usize,
    /// Discarded quiet experiments.
    pub discarded: usize,
    /// Successful resurrections.
    pub success: usize,
    /// Failures to boot the crash kernel.
    pub boot_failure: usize,
    /// Failures to resurrect the application.
    pub resurrect_failure: usize,
    /// Data corruption cases.
    pub data_corruption: usize,
    /// Wild-write damage accounting.
    pub damage: DamageReport,
    /// Flight-record event totals over every experiment the campaign ran
    /// (effective *and* discarded), merged per-shard in seed order.
    pub flight: EventCounts,
    /// Per-experiment records for the effective (crashed) experiments, in
    /// campaign order, each carrying its trace-derived cause annotation.
    pub records: Vec<ExperimentRecord>,
}

impl CampaignResult {
    /// Percentage helper.
    fn pct(&self, n: usize) -> f64 {
        if self.effective == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.effective as f64
        }
    }

    /// Successful-resurrection percentage.
    pub fn success_pct(&self) -> f64 {
        self.pct(self.success)
    }

    /// Boot-failure percentage.
    pub fn boot_failure_pct(&self) -> f64 {
        self.pct(self.boot_failure)
    }

    /// Resurrection-failure percentage.
    pub fn resurrect_failure_pct(&self) -> f64 {
        self.pct(self.resurrect_failure)
    }

    /// Data-corruption percentage.
    pub fn data_corruption_pct(&self) -> f64 {
        self.pct(self.data_corruption)
    }
}

pub(crate) fn machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192, // 32 MiB
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: CostModel::zero_io(),
    }
}

/// Recovers the flight record from a kernel's physical memory exactly the
/// way the crash kernel does: locate the trace region through the handoff
/// block, then run the validated per-slot reader over it.
pub(crate) fn recover_flight(k: &Kernel) -> FlightRecord {
    ow_kernel::layout::HandoffBlock::read(&k.machine.phys)
        .map(|(h, _)| FlightRecord::recover(&k.machine.phys, h.trace_base, h.trace_frames))
        .unwrap_or_default()
}

/// Runs a single experiment with `seed`.
///
/// The injected-fault sequence draws from [`fault_stream_seed`]`(seed)` —
/// an independent substream of the experiment seed — so it is decorrelated
/// from the workload's own randomness (which the campaign seeds with
/// [`workload_stream_seed`]`(seed)`).
pub fn run_experiment<W: Workload>(
    workload: &mut W,
    cfg: &CampaignConfig,
    seed: u64,
) -> (ExperimentRecord, DamageReport) {
    let mut rng = SimRng::seed_from_u64(fault_stream_seed(seed));
    let kernel_config = KernelConfig {
        user_protection: cfg.user_protection,
        fixes: cfg.fixes,
        ..KernelConfig::default()
    };
    let machine = ow_kernel::standard_machine(machine_config());
    let mut k = match Kernel::boot_cold(machine, kernel_config, ow_apps::full_registry()) {
        Ok(k) => k,
        Err(e) => {
            return (
                ExperimentRecord {
                    outcome: Outcome::BootFailure(format!("cold boot: {e}")),
                    cause: "no trace (cold boot failed)".into(),
                    events: EventCounts::default(),
                },
                DamageReport::default(),
            )
        }
    };

    let pid = workload.setup(&mut k);

    // Warm up, then inject at a random batch index.
    let inject_at = rng.gen_range(4..cfg.max_batches / 2);
    let mut damage = DamageReport::default();
    let mut injected = false;
    for batch in 0..cfg.max_batches {
        if batch == inject_at {
            let (_, d) = inject_batch(&mut k, &mut rng, cfg.faults_per_experiment);
            damage = d;
            injected = true;
        }
        workload.drive(&mut k, pid);
        if k.panicked.is_some() {
            break;
        }
        // A queued stall only fires through the watchdog: model the timer
        // tick noticing the hang.
        if injected {
            if let Some(pf) = k.pending_fault {
                if pf.cause == ow_kernel::PanicCause::Stall && !pf.in_syscall {
                    k.pending_fault = None;
                    k.do_panic(ow_kernel::PanicCause::Stall);
                    break;
                }
            }
        }
    }

    if k.panicked.is_none() {
        // The faults never produced a kernel fault, so §6 discards the
        // experiment — regardless of the application's health: a wild
        // write can silently corrupt user data without ever crashing the
        // kernel, and the paper's methodology only classifies experiments
        // that ended in a kernel fault.
        let flight = recover_flight(&k);
        return (
            ExperimentRecord {
                outcome: Outcome::NoCrash,
                cause: flight.tail_summary(CAUSE_TAIL_EVENTS),
                events: flight.event_counts(),
            },
            damage,
        );
    }

    // Recover the dead kernel's flight record *before* the microreboot, so
    // even boot failures (where no crash kernel ever runs) get a cause
    // annotation.
    let flight = recover_flight(&k);
    let cause = flight.tail_summary(CAUSE_TAIL_EVENTS);
    let events = flight.event_counts();
    let classified = |outcome: Outcome| ExperimentRecord {
        outcome,
        cause: cause.clone(),
        events,
    };

    // Microreboot. The resurrection supervisor is disabled here on purpose:
    // Table 5 measures the paper's original single-shot recovery semantics,
    // and the supervisor's contribution is measured separately by the
    // recovery-robustness campaign (`crate::recovery`) with an explicit
    // on/off ablation.
    let ow_config = OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only([workload.name()])),
        morph: cfg.morph,
        strategy: cfg.strategy,
        supervisor: ow_core::SupervisorConfig {
            enabled: false,
            ..ow_core::SupervisorConfig::default()
        },
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = match microreboot(k, &ow_config) {
        Ok(ok) => ok,
        Err(MicrorebootFailure::SystemHalted(why)) => {
            return (classified(Outcome::BootFailure(why)), damage)
        }
        Err(MicrorebootFailure::CrashBootFailed(why)) => {
            return (classified(Outcome::BootFailure(why)), damage)
        }
        Err(MicrorebootFailure::RecoveryFailed(why)) => {
            return (classified(Outcome::ResurrectFailure(why)), damage)
        }
        Err(MicrorebootFailure::NotPanicked) => unreachable!("panicked checked above"),
    };

    let Some(proc_report) = report.proc_named(workload.name()) else {
        return (
            classified(Outcome::ResurrectFailure("process list unreadable".into())),
            damage,
        );
    };
    if !proc_report.outcome.is_success() {
        return (
            classified(Outcome::ResurrectFailure(format!(
                "{:?}",
                proc_report.outcome
            ))),
            damage,
        );
    }
    let new_pid = proc_report.new_pid.expect("successful outcomes have a pid");

    // Let the application settle (finish reloads, reopen sockets), then
    // verify its data against the remote log.
    workload.reconnect(&mut k2, new_pid);
    for _ in 0..8 {
        k2.run_step();
    }
    match workload.verify(&mut k2, new_pid) {
        VerifyResult::Intact => (classified(Outcome::Success), damage),
        VerifyResult::Corrupted(why) => (classified(Outcome::DataCorruption(why)), damage),
        VerifyResult::Missing => (
            classified(Outcome::ResurrectFailure("gone after restart".into())),
            damage,
        ),
    }
}

/// Runs a whole campaign: experiments until `effective_experiments` of them
/// crashed, aggregating outcomes (one Table 5 row).
///
/// Experiments are sharded across `cfg.jobs` worker threads by the
/// deterministic engine ([`crate::engine`]): workers claim experiment
/// indices, run them concurrently, and the merger consumes results in seed
/// order, stopping at the first `effective_experiments` crashed experiments
/// of that order — exactly the set the serial loop would have kept, so the
/// result (and everything derived from it, down to `--json` bytes) is
/// identical for every job count. A worker panic costs one experiment,
/// classified as a resurrect failure, never the campaign.
pub fn run_campaign<W: Workload>(
    make_workload: impl Fn(u64) -> W + Sync,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let mut result = CampaignResult::default();
    engine::run_indexed(
        cfg.jobs,
        None,
        |i| {
            let seed = experiment_seed(cfg.seed, i);
            let mut workload = make_workload(workload_stream_seed(seed));
            run_experiment(&mut workload, cfg, seed)
        },
        |_, outcome| {
            let (record, damage) = outcome.unwrap_or_else(|panic_msg| {
                (
                    ExperimentRecord {
                        outcome: Outcome::ResurrectFailure(format!(
                            "harness panic contained: {panic_msg}"
                        )),
                        cause: "panic contained by the campaign engine".into(),
                        events: EventCounts::default(),
                    },
                    DamageReport::default(),
                )
            });
            result.damage.merge(&damage);
            result.flight.merge(&record.events);
            match &record.outcome {
                Outcome::NoCrash => {
                    result.discarded += 1;
                    return true;
                }
                Outcome::Success => result.success += 1,
                Outcome::BootFailure(_) => result.boot_failure += 1,
                Outcome::ResurrectFailure(_) => result.resurrect_failure += 1,
                Outcome::DataCorruption(_) => result.data_corruption += 1,
            }
            result.effective += 1;
            result.records.push(record);
            result.effective < cfg.effective_experiments
        },
    );
    result
}
