//! The deterministic parallel campaign engine.
//!
//! Every experiment in the §6 evaluation is independent by construction —
//! experiment `i` is a pure function of the campaign seed and `i` — which
//! is the embarrassingly-parallel shape Rio/Nooks-style fault-injection
//! studies scale by sharding seeds across workers. This module is the
//! zero-dependency sharding layer: `std::thread` workers claim experiment
//! indices from a shared counter, run them concurrently, and a single
//! merger hands the results to the caller **strictly in index order**.
//!
//! The ordering guarantee is the whole point: because the merger consumes
//! results exactly as the serial loop would have produced them, every
//! campaign output — classification counts, table rows, flight-annotation
//! merges, `--json` exports — is byte-identical to the serial run for the
//! same seed, regardless of job count or scheduling. The §6
//! discard-and-redraw rule (quiet experiments are discarded and more seeds
//! drawn) is handled by deterministic seed reservation: workers
//! over-provision by claiming indices past the eventual cutoff, and the
//! merger simply stops consuming once the first `N` effective experiments
//! have been seen in index order, ignoring any speculative results beyond
//! that prefix.
//!
//! Worker panics are campaign-safe: each experiment runs inside
//! [`ow_core::supervisor::contain`] (the PR-3 resurrection-supervisor
//! containment boundary), so a panicking experiment surfaces as that
//! index's `Err(message)` — which the campaign classifies like any other
//! outcome — instead of poisoning the channel or deadlocking the merger.
//!
//! The merger's reorder buffer is **bounded**: workers may not start an
//! experiment more than [`CLAIM_WINDOW_PER_JOB`]`× jobs` indices past the
//! merger's delivered watermark. Without the bound, one slow experiment at
//! the head lets every other worker race arbitrarily far ahead, and the
//! out-of-order `BTreeMap` grows with campaign length instead of job count
//! (each buffered Table 5 record carries its cause string and event
//! counts). Progress is deadlock-free by construction: the index the
//! merger wants next is always strictly inside every worker's window.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

/// Per-worker claim-ahead allowance. The merger buffers at most
/// `jobs * CLAIM_WINDOW_PER_JOB` undelivered results, independent of
/// campaign length.
pub const CLAIM_WINDOW_PER_JOB: u64 = 4;

/// Resolves a requested job count: `0` means "auto" — the `OW_JOBS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    // ow-lint: allow(campaign-determinism) -- job count only affects work scheduling; the seed-ordered merger keeps output byte-identical for every value
    if let Some(n) = std::env::var("OW_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    // ow-lint: allow(campaign-determinism) -- same: parallelism picks the worker count, never the merge order
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--jobs N` argument pair out of a CLI argument list, falling
/// back to `0` (= auto) when absent or malformed.
pub fn jobs_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Runs `run(0)`, `run(1)`, … across `jobs` worker threads, delivering
/// each result to `sink` **in index order**. `sink` returns `true` to keep
/// consuming; returning `false` stops the engine (workers quit after their
/// in-flight experiment). `limit` bounds the index space for fixed-size
/// campaigns; `None` leaves it open-ended, in which case `sink` must
/// eventually return `false`.
///
/// A panic inside `run` is contained and delivered as `Err(message)` for
/// that index; all other results arrive as `Ok`.
///
/// `jobs` is resolved through [`resolve_jobs`]; a resolved count of 1 runs
/// inline on the caller's thread through the very same
/// containment-and-deliver path, so serial and parallel runs are the same
/// computation by construction.
pub fn run_indexed<T, R, S>(jobs: usize, limit: Option<u64>, run: R, mut sink: S)
where
    T: Send,
    R: Fn(u64) -> T + Sync,
    S: FnMut(u64, Result<T, String>) -> bool,
{
    let jobs = resolve_jobs(jobs);
    let limit = limit.unwrap_or(u64::MAX);
    if jobs <= 1 {
        for i in 0..limit {
            if !sink(i, ow_core::supervisor::contain(|| run(i))) {
                return;
            }
        }
        return;
    }

    let next = AtomicU64::new(0);
    let delivered = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let gate = Mutex::new(());
    let resumed = Condvar::new();
    let window = jobs as u64 * CLAIM_WINDOW_PER_JOB;
    let (tx, rx) = mpsc::channel::<(u64, Result<T, String>)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (next, stop, run) = (&next, &stop, &run);
            let (delivered, gate, resumed) = (&delivered, &gate, &resumed);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= limit {
                        break;
                    }
                    // High-water mark: don't start index `i` until the
                    // merger's watermark is within `window` of it, so the
                    // reorder buffer stays bounded. The timeout is a
                    // belt-and-braces wakeup; the merger notifies on every
                    // delivery and on stop.
                    while !stop.load(Ordering::Relaxed)
                        && i >= delivered.load(Ordering::Acquire).saturating_add(window)
                    {
                        let guard = gate.lock().unwrap();
                        if stop.load(Ordering::Relaxed)
                            || i < delivered.load(Ordering::Acquire).saturating_add(window)
                        {
                            break;
                        }
                        let _ = resumed
                            .wait_timeout(guard, Duration::from_millis(10))
                            .unwrap();
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let out = ow_core::supervisor::contain(|| run(i));
                    if tx.send((i, out)).is_err() {
                        break; // merger stopped consuming
                    }
                }
            });
        }
        drop(tx);

        // The merger: buffer out-of-order arrivals, release in index order,
        // and advance the watermark so throttled workers can resume.
        let mut pending: BTreeMap<u64, Result<T, String>> = BTreeMap::new();
        let mut want = 0u64;
        'merge: for (i, out) in rx.iter() {
            pending.insert(i, out);
            while let Some(out) = pending.remove(&want) {
                if !sink(want, out) {
                    stop.store(true, Ordering::Relaxed);
                    break 'merge;
                }
                want += 1;
            }
            delivered.store(want, Ordering::Release);
            let _guard = gate.lock().unwrap();
            resumed.notify_all();
        }
        // Wake any worker still throttled on the watermark (stop is set or
        // the channel drained); dropping the receiver unblocks any worker
        // mid-send; the scope then joins every worker before returning.
        let _guard = gate.lock().unwrap();
        resumed.notify_all();
        drop(_guard);
    });
}

/// Deterministic parallel map over a fixed item list: `f` runs on workers,
/// the returned vector is in item order, and a panic inside `f` yields
/// `Err(message)` for that slot.
pub fn parallel_map<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<Result<T, String>>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    run_indexed(
        jobs,
        Some(items.len() as u64),
        |i| f(&items[i as usize], i as usize),
        |_, r| {
            out.push(r);
            true
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_under_any_job_count() {
        for jobs in [1, 2, 4, 7] {
            let mut seen = Vec::new();
            run_indexed(
                jobs,
                Some(50),
                |i| i * 3,
                |i, r| {
                    assert_eq!(r, Ok(i * 3));
                    seen.push(i);
                    true
                },
            );
            assert_eq!(seen, (0..50).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn early_stop_truncates_to_the_same_prefix() {
        for jobs in [1, 3, 8] {
            let mut sum = 0u64;
            run_indexed(
                jobs,
                None,
                |i| i,
                |_, r| {
                    sum += r.unwrap();
                    sum < 100
                },
            );
            // 0+1+..+14 = 105: the first prefix whose sum reaches 100.
            assert_eq!(sum, 105, "jobs={jobs}");
        }
    }

    #[test]
    fn worker_panics_surface_as_classified_errors() {
        for jobs in [1, 4] {
            let mut outs = Vec::new();
            run_indexed(
                jobs,
                Some(10),
                |i| {
                    assert!(i != 3 && i != 7, "seeded harness panic at {i}");
                    i
                },
                |_, r| {
                    outs.push(r);
                    true
                },
            );
            assert_eq!(outs.len(), 10, "jobs={jobs}");
            assert!(outs[3].is_err() && outs[7].is_err());
            assert_eq!(outs[5], Ok(5));
        }
    }

    #[test]
    fn claim_window_bounds_the_reorder_buffer() {
        // A slow experiment at index 0 pins the merger's watermark at 0;
        // the fast workers must not start anything at or past the claim
        // window, no matter how long the head stalls or how many indices
        // remain. (Before the watermark existed, they would race through
        // all 200 and the merger buffered 199 results.)
        let jobs = 4usize;
        let window = jobs as u64 * CLAIM_WINDOW_PER_JOB;
        let started = Mutex::new(Vec::<u64>::new());
        let mut seen = Vec::new();
        run_indexed(
            jobs,
            Some(200),
            |i| {
                started.lock().unwrap().push(i);
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(100));
                    let max = *started.lock().unwrap().iter().max().unwrap();
                    assert!(max < window, "started index {max} past the {window} window");
                }
                i
            },
            |i, r| {
                assert_eq!(r, Ok(i));
                seen.push(i);
                true
            },
        );
        // The throttle must not cost completeness or ordering.
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..30).collect();
        for jobs in [1, 5] {
            let out = parallel_map(jobs, &items, |&x, idx| x + idx as u64);
            let want: Vec<_> = items.iter().map(|&x| Ok(x * 2)).collect();
            assert_eq!(out, want, "jobs={jobs}");
        }
    }

    #[test]
    fn jobs_args_parsing() {
        let a = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from_args(&a(&["--jobs", "4"])), 4);
        assert_eq!(jobs_from_args(&a(&["--experiments", "9"])), 0);
        assert_eq!(jobs_from_args(&a(&["--jobs", "bogus"])), 0);
        assert_eq!(resolve_jobs(3), 3);
        assert!(resolve_jobs(0) >= 1);
    }
}
