//! The synthetic fault model (§6).
//!
//! The paper uses the University of Michigan injector built for the Rio
//! file cache and reused for Nooks: each fault changes a single integer on
//! the kernel stack of a random thread, a single instruction, or an
//! instruction operand in kernel code — emulating stack corruption,
//! uninitialized variables, bad test conditions, bad parameters and wild
//! writes.
//!
//! Our kernel's code is host Rust, so an injected code fault cannot be
//! executed literally; instead each fault *manifests* according to an
//! empirical mixture grounded in the fail-stop literature the paper cites
//! [3, 15, 22, 28]: most kernel faults cause an immediate clean panic; a
//! minority first damage memory via wild writes, or hang the system, or
//! double-fault, or sabotage the panic path itself. Where a wild write
//! lands decides the experiment's fate (see `DESIGN.md` §5) — outcomes
//! emerge from the memory layout, not from hard-coded probabilities.

use ow_kernel::{Kernel, PanicCause, PendingFault};
use ow_simhw::{machine::WildWriteOutcome, SimRng, PAGE_SIZE};
use ow_trace::{Counter, EventKind};
use std::collections::BTreeMap;

/// What kind of source-level fault was injected (the Rio taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A flipped integer on a thread's kernel stack.
    StackValue,
    /// A corrupted instruction in kernel text.
    Instruction,
    /// A corrupted instruction operand.
    Operand,
    /// A stray pointer store.
    WildPointer,
}

impl FaultKind {
    /// Stable encoding for the flight record's `FaultInjected` events.
    pub fn code(self) -> u64 {
        match self {
            FaultKind::StackValue => 1,
            FaultKind::Instruction => 2,
            FaultKind::Operand => 3,
            FaultKind::WildPointer => 4,
        }
    }
}

/// How a fired fault manifests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Manifestation {
    /// No observable effect (the paper discards ~20% of experiments whose
    /// 30 faults never produce a kernel fault).
    Silent,
    /// Immediate fail-stop panic with no prior damage (the common case).
    CleanPanic,
    /// One or more wild writes land, then the kernel panics.
    WildWrites(u32),
    /// The kernel hangs (recoverable only via the watchdog NMI).
    Stall,
    /// A double fault.
    DoubleFault,
    /// The panic path itself is damaged (stack-print recursion /
    /// corrupted `current`), survivable only with KDump hardening.
    PanicPathSabotage,
}

/// One injected fault.
#[derive(Debug, Clone)]
pub struct Fault {
    /// Source-level taxonomy.
    pub kind: FaultKind,
    /// Runtime manifestation.
    pub manifestation: Manifestation,
}

/// Per-fault probability of staying silent, chosen so that a batch of 30
/// faults produces a kernel crash in ~80% of experiments (§6: "about 20%
/// of the experiments did not result in a kernel fault").
pub const P_SILENT: f64 = 0.948;

/// Draws one fault from the model.
pub fn draw_fault(rng: &mut SimRng) -> Fault {
    let kind = match rng.gen_range(0..4u32) {
        0 => FaultKind::StackValue,
        1 => FaultKind::Instruction,
        2 => FaultKind::Operand,
        _ => FaultKind::WildPointer,
    };
    let manifestation = if rng.gen_bool(P_SILENT) {
        Manifestation::Silent
    } else {
        match rng.gen_range(0..100u32) {
            // Fail-stop dominates (the fail-stop literature; §4).
            0..=72 => Manifestation::CleanPanic,
            // Wild writes: damage first, panic after.
            73..=89 => Manifestation::WildWrites(rng.gen_range(1..=4u32)),
            // Together ~10% of crashing faults: the stalls and recursive
            // failures that cost the paper 8% before the §6 fixes.
            90..=93 => Manifestation::Stall,
            94..=96 => Manifestation::DoubleFault,
            _ => Manifestation::PanicPathSabotage,
        }
    };
    Fault {
        kind,
        manifestation,
    }
}

/// Statistics about where injected wild writes landed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DamageReport {
    /// Writes that landed somewhere.
    pub landed: u32,
    /// Writes trapped by the memory-protected mode.
    pub trapped: u32,
    /// Writes refused by the crash-image hardware protection.
    pub blocked: u32,
    /// Landed writes classified by the registered structure they hit
    /// ([`ow_layout::classify_victim`]); writes that landed outside any
    /// registered structure are not counted here.
    pub victims: BTreeMap<&'static str, u32>,
}

impl DamageReport {
    /// Folds another report into this one.
    pub fn merge(&mut self, other: &DamageReport) {
        self.landed += other.landed;
        self.trapped += other.trapped;
        self.blocked += other.blocked;
        for (&name, &n) in &other.victims {
            *self.victims.entry(name).or_insert(0) += n;
        }
    }
}

/// Applies one wild write at a model-chosen physical address.
///
/// Real stray stores are not uniform: kernel bugs overwhelmingly scribble
/// near the data they were legitimately touching. A fraction of writes is
/// therefore biased toward "hot" kernel structures (the handoff/IDT page,
/// the kernel region, the current process's descriptor neighborhood), and
/// the rest is uniform over RAM. `via_virtual` models whether the store
/// went through a virtual user mapping — the only kind the protected mode
/// can trap (§4).
pub fn apply_wild_write(k: &mut Kernel, rng: &mut SimRng, report: &mut DamageReport) {
    let total_bytes = k.machine.phys.size();
    let addr = if rng.gen_bool(0.2) {
        // Biased toward hot kernel structures: the IDT and kernel region
        // are touched by every interrupt and syscall, so buggy kernel code
        // scribbles there far more often than size alone predicts; direct
        // hits on the current process's descriptor or page tables are
        // rarer (their code is small and unusually well-tested, §4).
        match rng.gen_range(0..1000u32) {
            0..=169 => {
                // The handoff/IDT frame: every interrupt walks it.
                rng.gen_range(0..PAGE_SIZE as u64)
            }
            170..=899 => {
                // The kernel region (header, heap structures).
                let base = k.base_frame * PAGE_SIZE as u64;
                let len = k.config.kernel_frames * PAGE_SIZE as u64;
                base + rng.gen_range(0..len)
            }
            900..=904 => {
                // The current process's descriptor neighborhood.
                let cur = k.machine.cpus[0].current_pid;
                match k.proc(cur) {
                    Ok(p) => p.desc_addr + rng.gen_range(0..ow_layout::footprint("ProcDesc")),
                    Err(_) => rng.gen_range(0..total_bytes),
                }
            }
            905..=909 => {
                // A page-table frame of the current process.
                let cur = k.machine.cpus[0].current_pid;
                match k.proc(cur) {
                    Ok(p) => p.asp.root() * PAGE_SIZE as u64 + rng.gen_range(0..PAGE_SIZE as u64),
                    Err(_) => rng.gen_range(0..total_bytes),
                }
            }
            _ => {
                // A mapped user page of the current process: stray stores
                // through `copy_to_user`-style paths land in the buffers
                // the kernel was legitimately touching. These are exactly
                // the writes the memory-protected mode traps (§4).
                let cur = k.machine.cpus[0].current_pid;
                let page = (|| {
                    let p = k.proc(cur).ok()?;
                    let mut pages = Vec::new();
                    p.asp
                        .for_each_mapped(&k.machine.phys, |_va, pte| {
                            let want = ow_simhw::PteFlags::PRESENT | ow_simhw::PteFlags::DIRTY;
                            if pte.flags().contains(want) {
                                pages.push(pte.pfn());
                            }
                        })
                        .ok()?;
                    if pages.is_empty() {
                        None
                    } else {
                        Some(pages[rng.gen_range(0..pages.len())])
                    }
                })();
                match page {
                    Some(pfn) => {
                        // Data structures cluster toward low page offsets
                        // (allocators pack from the start), so the stray
                        // store does too: quadratic low-offset bias.
                        let r = rng.gen_range(0..PAGE_SIZE as u64);
                        let off = (r * r) / PAGE_SIZE as u64;
                        pfn * PAGE_SIZE as u64 + off
                    }
                    None => rng.gen_range(0..total_bytes),
                }
            }
        }
    } else {
        rng.gen_range(0..total_bytes)
    };
    let mask = rng.next_u64() | 1; // never a no-op
    let via_virtual = rng.gen_bool(0.9);
    // Classify before the write lands: classification scans for the
    // victim's magic, which the write itself may destroy. Purely a memory
    // read, so campaign outcomes stay deterministic per seed.
    let victim = ow_layout::classify_victim(&k.machine.phys, addr).map(|e| e.name);
    match k.machine.wild_write(addr, mask, via_virtual) {
        WildWriteOutcome::Landed(_) => {
            report.landed += 1;
            if let Some(name) = victim {
                *report.victims.entry(name).or_insert(0) += 1;
            }
        }
        WildWriteOutcome::TrappedByProtection => {
            report.trapped += 1;
            // The protected mode caught the stray store: leave evidence in
            // the flight record before the ensuing clean panic.
            k.note_protection_trap(addr);
        }
        WildWriteOutcome::BlockedByHardware => report.blocked += 1,
    }
}

/// Injects a batch of `n` faults into a running kernel: applies all wild
/// -write damage immediately and queues the first crashing manifestation
/// as the kernel's pending fault. Returns the drawn faults and damage.
pub fn inject_batch(k: &mut Kernel, rng: &mut SimRng, n: u32) -> (Vec<Fault>, DamageReport) {
    let mut faults = Vec::with_capacity(n as usize);
    let mut report = DamageReport::default();
    let mut cause: Option<PanicCause> = None;
    for _ in 0..n {
        let f = draw_fault(rng);
        let writes = match f.manifestation {
            Manifestation::WildWrites(w) => w as u64,
            _ => 0,
        };
        k.trace_event(EventKind::FaultInjected, 0, f.kind.code(), writes);
        k.trace_counter(Counter::FaultsInjected, 1);
        match &f.manifestation {
            Manifestation::Silent => {}
            Manifestation::CleanPanic => {
                cause.get_or_insert(PanicCause::Oops("injected fault"));
            }
            Manifestation::WildWrites(writes) => {
                for _ in 0..*writes {
                    // A trapped write faults the kernel immediately: clean
                    // panic before the damage lands (§4).
                    let before = report.trapped;
                    apply_wild_write(k, rng, &mut report);
                    if report.trapped > before {
                        cause.get_or_insert(PanicCause::Oops("protection trap"));
                    }
                }
                cause.get_or_insert(PanicCause::Oops("wild write fault"));
            }
            Manifestation::Stall => {
                cause.get_or_insert(PanicCause::Stall);
            }
            Manifestation::DoubleFault => {
                cause.get_or_insert(PanicCause::DoubleFault);
            }
            Manifestation::PanicPathSabotage => {
                cause.get_or_insert(PanicCause::CorruptedPanicPath);
            }
        }
        faults.push(f);
    }
    if let Some(cause) = cause {
        k.pending_fault = Some(PendingFault {
            cause,
            in_syscall: rng.gen_bool(0.5),
        });
    }
    (faults, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_rate_yields_about_20_percent_quiet_experiments() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut quiet = 0;
        let trials = 2000;
        for _ in 0..trials {
            let all_silent = (0..30)
                .all(|_| matches!(draw_fault(&mut rng).manifestation, Manifestation::Silent));
            if all_silent {
                quiet += 1;
            }
        }
        let frac = quiet as f64 / trials as f64;
        assert!((0.12..=0.30).contains(&frac), "quiet fraction {frac}");
    }

    #[test]
    fn fail_stop_dominates_manifestations() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut clean = 0;
        let mut other = 0;
        for _ in 0..20_000 {
            match draw_fault(&mut rng).manifestation {
                Manifestation::Silent => {}
                Manifestation::CleanPanic => clean += 1,
                _ => other += 1,
            }
        }
        assert!(clean > other, "fail-stop must dominate: {clean} vs {other}");
    }
}
