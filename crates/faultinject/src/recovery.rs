//! The recovery-robustness campaign: faults injected into the *recovery
//! path itself*, closing the loop on the resurrection supervisor.
//!
//! Table 5's campaign ([`crate::campaign`]) injects faults into the main
//! kernel and measures whether applications survive. This campaign instead
//! lets the main kernel die cleanly and then attacks the recovery: cycles
//! spliced into dead-kernel chains, panics and stalls inside the
//! resurrection engine, crash-kernel boot failures, and panic storms. Each
//! seeded experiment runs three times — supervisor on, supervisor off, and
//! rollback-in-place enabled — so the ablation shows exactly which
//! whole-microreboot failures the supervisor converts into per-process
//! degradations or generation-2 restarts, and which panics rung 0 absorbs
//! without ever booting the crash kernel. Three checkpoint-directed fault
//! kinds (stale epoch, torn A/B slot, CRC-valid-but-poisoned descriptor)
//! attack the rollback path itself and must deterministically fall through
//! to the ordinary microreboot.

use crate::campaign::{experiment_seed, workload_stream_seed};
use crate::engine;
use ow_apps::Workload;
use ow_core::{
    microreboot, reader, EnginePanicFault, LadderRung, MicrorebootReport, OtherworldConfig,
    PolicySource, ProcOutcome, ReadStats, RecoveryFaultPlan, ResurrectionPolicy, StallFault,
    SupervisorConfig,
};
use ow_kernel::{
    layout::{
        ckpt_slot_addr, crc::crc32, pstate, snipkind, EpochCheckpoint, HandoffBlock, ProcDesc,
        Record, CKPT_SLOTS, SNIP_HEADER_BYTES,
    },
    Kernel, KernelConfig, PanicOutcome,
};
use ow_simhw::{
    clock::CYCLES_PER_SEC, machine::MachineConfig, stream_seed, CostModel, PhysAddr, SimRng,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stream tag deriving the fault-arming substream of a recovery-experiment
/// seed (decorrelated from the workload stream that builds the dead
/// system).
pub const STREAM_RECOVERY_ARM: u64 = 0x4152_4d46_4c54_3031; // "ARMFLT01"

/// Stream tag for the campaign-level fault-kind draw (decorrelated from
/// both the workload stream and the arming stream).
pub const STREAM_RECOVERY_KIND: u64 = 0x4b49_4e44_4452_4157; // "KINDDRAW"

/// The recovery-time fault family (the supervisor's threat model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFaultKind {
    /// A CRC-valid cycle spliced into the victim's VMA chain in dead
    /// memory: every engine rung sees the same corruption, so the ladder
    /// rides down to a clean restart.
    ChainCycle,
    /// The resurrection engine panics on the victim at the stronger rungs.
    EnginePanic,
    /// The engine panics for enough distinct processes to cross the
    /// escalation threshold — a panic storm.
    PanicStorm,
    /// The crash kernel itself fails to boot (first generation).
    CrashBootFailure,
    /// The engine stalls past its cycle budget on the victim.
    RecoveryStall,
    /// The newest sealed epoch's syscall sequence is rewritten backwards:
    /// a stale checkpoint that a rollback must refuse (restoring it would
    /// silently lose post-seal work).
    StaleEpoch,
    /// Payload bytes of the newest sealed slot are flipped without fixing
    /// the payload CRC — a torn A/B write the CRC gate must expose.
    TornSlot,
    /// A process descriptor *inside* the sealed payload is rewritten to a
    /// semantically invalid value and the payload CRC is recomputed over
    /// the poisoned bytes: the checkpoint passes the CRC gate and only the
    /// per-record validated readers can reject it.
    PoisonedDesc,
}

impl RecoveryFaultKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryFaultKind::ChainCycle => "chain_cycle",
            RecoveryFaultKind::EnginePanic => "engine_panic",
            RecoveryFaultKind::PanicStorm => "panic_storm",
            RecoveryFaultKind::CrashBootFailure => "crash_boot_failure",
            RecoveryFaultKind::RecoveryStall => "recovery_stall",
            RecoveryFaultKind::StaleEpoch => "stale_epoch",
            RecoveryFaultKind::TornSlot => "torn_slot",
            RecoveryFaultKind::PoisonedDesc => "poisoned_desc",
        }
    }

    fn draw(rng: &mut SimRng) -> Self {
        match rng.next_u64() % 8 {
            0 => RecoveryFaultKind::ChainCycle,
            1 => RecoveryFaultKind::EnginePanic,
            2 => RecoveryFaultKind::PanicStorm,
            3 => RecoveryFaultKind::CrashBootFailure,
            4 => RecoveryFaultKind::RecoveryStall,
            5 => RecoveryFaultKind::StaleEpoch,
            6 => RecoveryFaultKind::TornSlot,
            _ => RecoveryFaultKind::PoisonedDesc,
        }
    }
}

/// Classified outcome of one recovery under injected faults, ordered from
/// best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Rung 0 absorbed the panic: the newest epoch checkpoint validated
    /// and every process resumed in the same kernel generation without a
    /// crash-kernel boot.
    RolledBack,
    /// Every process resurrected at the full rung.
    FullResurrection,
    /// At least one process needed a weaker engine rung but kept (most of)
    /// its state.
    Degraded,
    /// At least one process was restarted clean from the registry (data
    /// lost, application running).
    CleanRestart,
    /// Recovery escalated to a restart-only generation-2 crash kernel.
    Gen2Restart,
    /// Some process failed outright, but the microreboot completed.
    PerProcessFailure,
    /// The whole microreboot was lost (a classified error — never a
    /// propagated panic).
    WholeFailure,
}

impl RecoveryOutcome {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryOutcome::RolledBack => "rolled_back",
            RecoveryOutcome::FullResurrection => "full_resurrection",
            RecoveryOutcome::Degraded => "degraded",
            RecoveryOutcome::CleanRestart => "clean_restart",
            RecoveryOutcome::Gen2Restart => "gen2_restart",
            RecoveryOutcome::PerProcessFailure => "per_process_failure",
            RecoveryOutcome::WholeFailure => "whole_failure",
        }
    }
}

/// One experiment's paired result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// The injected fault kind.
    pub fault: RecoveryFaultKind,
    /// Outcome with the supervisor enabled.
    pub with_supervisor: RecoveryOutcome,
    /// Outcome with the supervisor disabled.
    pub without_supervisor: RecoveryOutcome,
    /// Outcome with rollback-in-place (rung 0) enabled on top of the
    /// supervisor.
    pub with_rollback: RecoveryOutcome,
}

/// Outcome counts for one supervisor setting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySide {
    /// Rung-0 rollbacks (same generation, no crash-kernel boot).
    pub rolled_back: usize,
    /// Full-rung resurrections.
    pub full: usize,
    /// Degraded (weaker rung, state kept).
    pub degraded: usize,
    /// Clean restarts from the registry.
    pub clean_restart: usize,
    /// Generation-2 escalations.
    pub gen2: usize,
    /// Completed microreboots with a failed process.
    pub per_process_failure: usize,
    /// Whole-microreboot failures.
    pub whole_failure: usize,
    /// Contained engine panics (from the reports).
    pub contained_panics: u64,
    /// Recovery-watchdog firings (from the reports).
    pub watchdog_fires: u64,
}

impl RecoverySide {
    fn count(&mut self, outcome: RecoveryOutcome) {
        match outcome {
            RecoveryOutcome::RolledBack => self.rolled_back += 1,
            RecoveryOutcome::FullResurrection => self.full += 1,
            RecoveryOutcome::Degraded => self.degraded += 1,
            RecoveryOutcome::CleanRestart => self.clean_restart += 1,
            RecoveryOutcome::Gen2Restart => self.gen2 += 1,
            RecoveryOutcome::PerProcessFailure => self.per_process_failure += 1,
            RecoveryOutcome::WholeFailure => self.whole_failure += 1,
        }
    }

    /// Experiments where the application layer survived in some form
    /// (anything but a whole-microreboot failure).
    pub fn survived(&self) -> usize {
        self.rolled_back
            + self.full
            + self.degraded
            + self.clean_restart
            + self.gen2
            + self.per_process_failure
    }
}

/// Aggregated recovery-robustness campaign (the new bench table's data).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryCampaignResult {
    /// Paired experiments run.
    pub experiments: usize,
    /// Counts with the supervisor enabled.
    pub with_supervisor: RecoverySide,
    /// Counts with the supervisor disabled.
    pub without_supervisor: RecoverySide,
    /// Counts with rollback-in-place enabled (supervisor on).
    pub with_rollback: RecoverySide,
    /// Panics that escaped `microreboot()` into the campaign harness. The
    /// supervisor's containment guarantee is that this stays zero.
    pub panic_escapes: usize,
    /// Per-experiment records in campaign order.
    pub records: Vec<RecoveryRecord>,
}

/// Configuration of the recovery campaign.
#[derive(Debug, Clone)]
pub struct RecoveryCampaignConfig {
    /// Paired (on/off) experiments to run.
    pub experiments: usize,
    /// Campaign seed (experiment `i` uses
    /// [`experiment_seed`]`(seed, i)`).
    pub seed: u64,
    /// Worker threads for the sharded engine: `0` = auto (`OW_JOBS`, then
    /// available parallelism). Results are identical for every value.
    pub jobs: usize,
}

impl Default for RecoveryCampaignConfig {
    fn default() -> Self {
        RecoveryCampaignConfig {
            experiments: 40,
            seed: 0x5ec0_4e4a, // distinct from the Table 5 campaign seed
            jobs: 0,
        }
    }
}

/// The applications each experiment boots and drives before the crash. Four
/// processes give the panic-storm path (threshold 3) a process to spare.
const APPS: [&str; 4] = ["vi", "mysqld", "httpd", "joe"];

fn machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192, // 32 MiB
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: CostModel::zero_io(),
    }
}

/// Boots the standard four-app system, drives each workload a little, and
/// panics the kernel — the deterministic "dead kernel" every recovery
/// experiment starts from.
fn build_dead_system(seed: u64) -> Kernel {
    let machine = ow_kernel::standard_machine(machine_config());
    let mut k = Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry())
        .expect("cold boot");
    for name in APPS {
        let mut w = ow_apps::make_workload(name, workload_stream_seed(seed));
        let pid = w.setup(&mut k);
        for _ in 0..3 {
            w.drive(&mut k, pid);
        }
    }
    k.do_panic(ow_kernel::PanicCause::Oops("recovery-campaign crash"));
    k
}

/// Splices a CRC-valid cycle into the `victim`-th selected process's VMA
/// chain in the dead kernel's memory: the last VMA's `next` is pointed back
/// at the head, so a naive walk never terminates. The write goes through
/// the normal record codec, so the corruption is *not* detectable by
/// checksums — only the chain guard catches it.
fn inject_chain_cycle(k: &mut Kernel, victim: usize) {
    let Some(PanicOutcome::Handoff(info)) = k.panicked else {
        return;
    };
    let mut stats = ReadStats::default();
    let Ok(header) = reader::read_header(&k.machine.phys, info.dead_kernel_frame, &mut stats)
    else {
        return;
    };
    let selected: Vec<_> = reader::read_proc_list(&k.machine.phys, &header, &mut stats)
        .unwrap_or_default()
        .into_iter()
        .filter(|(_, d)| d.state != pstate::EXITED && APPS.contains(&d.name.as_str()))
        .collect();
    let Some((_, desc)) = selected.get(victim % selected.len().max(1)) else {
        return;
    };
    let Ok(vmas) = reader::read_vmas(&k.machine.phys, desc, &mut stats) else {
        return;
    };
    let (Some((head_addr, _)), Some((tail_addr, tail))) = (vmas.first(), vmas.last()) else {
        return;
    };
    let mut looped = tail.clone();
    looped.next = *head_addr;
    looped
        .write(&mut k.machine.phys, *tail_addr)
        .expect("rewrite tail VMA");
}

/// Locates the newest sealed epoch slot in the dead kernel — the slot a
/// rollback would choose — via the handoff block's trace-ring geometry.
fn newest_ckpt_slot(k: &Kernel) -> Option<(PhysAddr, EpochCheckpoint)> {
    let (h, _) = HandoffBlock::read(&k.machine.phys).ok()?;
    let mut best: Option<(PhysAddr, EpochCheckpoint)> = None;
    for slot in 0..CKPT_SLOTS {
        let addr = ckpt_slot_addr(h.trace_base, slot);
        if let Ok((c, _)) = EpochCheckpoint::read(&k.machine.phys, addr) {
            if c.valid != 0 && best.as_ref().is_none_or(|(_, b)| c.epoch > b.epoch) {
                best = Some((addr, c));
            }
        }
    }
    best
}

/// Rewinds the newest sealed epoch's syscall sequence through the codec:
/// the checkpoint stays structurally perfect but claims a moment *before*
/// the panic, so the freshness rule must refuse it.
fn inject_stale_epoch(k: &mut Kernel) {
    let Some((addr, mut c)) = newest_ckpt_slot(k) else {
        return;
    };
    c.seq = c.seq.wrapping_sub(1);
    c.write(&mut k.machine.phys, addr)
        .expect("rewind sealed epoch");
}

/// Tears the newest sealed slot: the second half of its payload is
/// bit-flipped in place without touching the header, exactly the damage a
/// write interrupted mid-slot leaves behind. The payload CRC no longer
/// matches and the CRC gate must expose it.
fn inject_torn_slot(k: &mut Kernel) {
    let Some((addr, c)) = newest_ckpt_slot(k) else {
        return;
    };
    if c.payload_len == 0 {
        return;
    }
    let half = c.payload_len / 2;
    let mut tail = vec![0u8; (c.payload_len - half) as usize];
    let at = addr + EpochCheckpoint::SIZE + half;
    k.machine
        .phys
        .read(at, &mut tail)
        .expect("read sealed payload");
    for b in &mut tail {
        *b = !*b;
    }
    k.machine
        .phys
        .write(at, &tail)
        .expect("tear sealed payload");
}

/// Poisons a descriptor *inside* the sealed payload: the first
/// process-descriptor snippet's state field is rewritten to a value no
/// live process can have, and the payload CRC is recomputed over the
/// poisoned bytes. The checkpoint passes the CRC gate; only the per-record
/// validated read during rollback can reject it.
fn inject_poisoned_desc(k: &mut Kernel) {
    let Some((addr, mut c)) = newest_ckpt_slot(k) else {
        return;
    };
    let base = addr + EpochCheckpoint::SIZE;
    let mut off = 0u64;
    while off + SNIP_HEADER_BYTES <= c.payload_len {
        let mut hdr = [0u8; SNIP_HEADER_BYTES as usize];
        if k.machine.phys.read(base + off, &mut hdr).is_err() {
            return;
        }
        let kind = u32::from_le_bytes(hdr[8..12].try_into().expect("snippet kind"));
        let len = u32::from_le_bytes(hdr[12..16].try_into().expect("snippet len")) as u64;
        if kind == snipkind::PROC {
            let src = base + off + SNIP_HEADER_BYTES;
            let Ok((mut desc, _)) = ProcDesc::read(&k.machine.phys, src) else {
                return;
            };
            desc.state = 0xdead; // far outside pstate's valid range
            desc.write(&mut k.machine.phys, src)
                .expect("poison sealed desc");
            let mut payload = vec![0u8; c.payload_len as usize];
            k.machine
                .phys
                .read(base, &mut payload)
                .expect("read sealed payload");
            c.payload_crc = crc32(&payload);
            c.write(&mut k.machine.phys, addr)
                .expect("reseal poisoned epoch");
            return;
        }
        off += SNIP_HEADER_BYTES + len;
    }
}

/// Builds the fault plan (and pre-corrupts dead memory) for one experiment.
fn arm_fault(k: &mut Kernel, kind: RecoveryFaultKind, rng: &mut SimRng) -> RecoveryFaultPlan {
    let victim = (rng.next_u64() % APPS.len() as u64) as usize;
    let mut plan = RecoveryFaultPlan::default();
    match kind {
        RecoveryFaultKind::ChainCycle => inject_chain_cycle(k, victim),
        RecoveryFaultKind::EnginePanic => {
            let panics_through = match rng.next_u64() % 3 {
                0 => LadderRung::Full,
                1 => LadderRung::NoSwapMigration,
                _ => LadderRung::AnonymousOnly,
            };
            plan.engine_panics.push(EnginePanicFault {
                victim,
                panics_through,
            });
        }
        RecoveryFaultKind::PanicStorm => {
            // Every process's engine dies at every rung: the storm counter
            // crosses the threshold and recovery must escalate.
            for v in 0..APPS.len() {
                plan.engine_panics.push(EnginePanicFault {
                    victim: v,
                    panics_through: LadderRung::AnonymousOnly,
                });
            }
        }
        RecoveryFaultKind::CrashBootFailure => plan.crash_boot_failures = 1,
        RecoveryFaultKind::RecoveryStall => plan.stalls.push(StallFault {
            victim,
            cycles: 600 * CYCLES_PER_SEC,
        }),
        RecoveryFaultKind::StaleEpoch => inject_stale_epoch(k),
        RecoveryFaultKind::TornSlot => inject_torn_slot(k),
        RecoveryFaultKind::PoisonedDesc => inject_poisoned_desc(k),
    }
    plan
}

/// Classifies a completed microreboot report.
fn classify(report: &MicrorebootReport) -> RecoveryOutcome {
    if report.rollback.is_some() {
        RecoveryOutcome::RolledBack
    } else if report.supervisor.escalated {
        RecoveryOutcome::Gen2Restart
    } else if report
        .procs
        .iter()
        .any(|p| matches!(p.outcome, ProcOutcome::RestartedClean))
    {
        RecoveryOutcome::CleanRestart
    } else if report.procs.iter().any(|p| p.rung > LadderRung::Full) {
        RecoveryOutcome::Degraded
    } else if report.procs.iter().any(|p| !p.outcome.is_success()) {
        RecoveryOutcome::PerProcessFailure
    } else {
        RecoveryOutcome::FullResurrection
    }
}

/// Runs one recovery experiment: build the dead system, arm `kind`, run the
/// microreboot with the supervisor `enabled` and rung 0 gated by
/// `rollback`, classify. Returns the outcome plus supervisor counters and
/// whether a panic escaped the microreboot.
pub fn run_recovery_experiment(
    seed: u64,
    kind: RecoveryFaultKind,
    enabled: bool,
    rollback: bool,
) -> (RecoveryOutcome, u64, u64, bool) {
    let mut rng = SimRng::seed_from_u64(stream_seed(seed, STREAM_RECOVERY_ARM));
    let mut k = build_dead_system(seed);
    let plan = arm_fault(&mut k, kind, &mut rng);
    let config = OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only(APPS)),
        supervisor: SupervisorConfig {
            enabled,
            ..SupervisorConfig::default()
        },
        rollback,
        recovery_faults: plan,
        ..OtherworldConfig::default()
    };
    match catch_unwind(AssertUnwindSafe(|| microreboot(k, &config))) {
        Ok(Ok((_k2, report))) => (
            classify(&report),
            report.supervisor.contained_panics as u64,
            report.supervisor.watchdog_fires as u64,
            false,
        ),
        Ok(Err(_failure)) => (RecoveryOutcome::WholeFailure, 0, 0, false),
        Err(_panic) => (RecoveryOutcome::WholeFailure, 0, 0, true),
    }
}

/// One sharded work item: a paired experiment's raw results before the
/// seed-ordered merge.
struct PairedRun {
    kind: RecoveryFaultKind,
    on: (RecoveryOutcome, u64, u64, bool),
    off: (RecoveryOutcome, u64, u64, bool),
    rollback: (RecoveryOutcome, u64, u64, bool),
}

/// Runs the full paired campaign: each seeded experiment draws one fault
/// kind and runs three times (supervisor on, supervisor off, rollback
/// enabled) on identically built systems.
///
/// Experiments are sharded across `cfg.jobs` workers by the deterministic
/// engine; the merger folds each pair's counts in seed order, so the
/// result is identical for every job count. A panic escaping even the
/// in-experiment `catch_unwind` (i.e. out of the worker's whole item) is
/// contained by the engine and recorded as a paired whole-failure with a
/// counted escape — never a poisoned channel or a deadlocked merger.
pub fn run_recovery_campaign(cfg: &RecoveryCampaignConfig) -> RecoveryCampaignResult {
    let mut result = RecoveryCampaignResult::default();
    engine::run_indexed(
        cfg.jobs,
        Some(cfg.experiments as u64),
        |i| {
            let seed = experiment_seed(cfg.seed, i);
            let mut rng = SimRng::seed_from_u64(stream_seed(seed, STREAM_RECOVERY_KIND));
            let kind = RecoveryFaultKind::draw(&mut rng);
            PairedRun {
                kind,
                on: run_recovery_experiment(seed, kind, true, false),
                off: run_recovery_experiment(seed, kind, false, false),
                rollback: run_recovery_experiment(seed, kind, true, true),
            }
        },
        |_, item| {
            let run = item.unwrap_or(PairedRun {
                // The worker itself panicked: count every side as a whole
                // failure and an escaped panic, keep the campaign alive.
                kind: RecoveryFaultKind::EnginePanic,
                on: (RecoveryOutcome::WholeFailure, 0, 0, true),
                off: (RecoveryOutcome::WholeFailure, 0, 0, false),
                rollback: (RecoveryOutcome::WholeFailure, 0, 0, false),
            });
            let (on, panics, fires, escaped_on) = run.on;
            result.with_supervisor.count(on);
            result.with_supervisor.contained_panics += panics;
            result.with_supervisor.watchdog_fires += fires;

            let (off, panics, fires, escaped_off) = run.off;
            result.without_supervisor.count(off);
            result.without_supervisor.contained_panics += panics;
            result.without_supervisor.watchdog_fires += fires;

            let (rb, panics, fires, escaped_rb) = run.rollback;
            result.with_rollback.count(rb);
            result.with_rollback.contained_panics += panics;
            result.with_rollback.watchdog_fires += fires;

            result.panic_escapes +=
                usize::from(escaped_on) + usize::from(escaped_off) + usize::from(escaped_rb);
            result.records.push(RecoveryRecord {
                fault: run.kind,
                with_supervisor: on,
                without_supervisor: off,
                with_rollback: rb,
            });
            result.experiments += 1;
            true
        },
    );
    result
}
