//! The recovery-robustness campaign: faults injected into the *recovery
//! path itself*, closing the loop on the resurrection supervisor.
//!
//! Table 5's campaign ([`crate::campaign`]) injects faults into the main
//! kernel and measures whether applications survive. This campaign instead
//! lets the main kernel die cleanly and then attacks the recovery: cycles
//! spliced into dead-kernel chains, panics and stalls inside the
//! resurrection engine, crash-kernel boot failures, and panic storms. Each
//! seeded experiment runs twice — supervisor on and supervisor off — so the
//! ablation shows exactly which whole-microreboot failures the supervisor
//! converts into per-process degradations or generation-2 restarts.

use crate::campaign::{experiment_seed, workload_stream_seed};
use crate::engine;
use ow_apps::Workload;
use ow_core::{
    microreboot, reader, EnginePanicFault, LadderRung, MicrorebootReport, OtherworldConfig,
    PolicySource, ProcOutcome, ReadStats, RecoveryFaultPlan, ResurrectionPolicy, StallFault,
    SupervisorConfig,
};
use ow_kernel::{
    layout::{pstate, Record},
    Kernel, KernelConfig, PanicOutcome,
};
use ow_simhw::{clock::CYCLES_PER_SEC, machine::MachineConfig, stream_seed, CostModel, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stream tag deriving the fault-arming substream of a recovery-experiment
/// seed (decorrelated from the workload stream that builds the dead
/// system).
pub const STREAM_RECOVERY_ARM: u64 = 0x4152_4d46_4c54_3031; // "ARMFLT01"

/// Stream tag for the campaign-level fault-kind draw (decorrelated from
/// both the workload stream and the arming stream).
pub const STREAM_RECOVERY_KIND: u64 = 0x4b49_4e44_4452_4157; // "KINDDRAW"

/// The recovery-time fault family (the supervisor's threat model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFaultKind {
    /// A CRC-valid cycle spliced into the victim's VMA chain in dead
    /// memory: every engine rung sees the same corruption, so the ladder
    /// rides down to a clean restart.
    ChainCycle,
    /// The resurrection engine panics on the victim at the stronger rungs.
    EnginePanic,
    /// The engine panics for enough distinct processes to cross the
    /// escalation threshold — a panic storm.
    PanicStorm,
    /// The crash kernel itself fails to boot (first generation).
    CrashBootFailure,
    /// The engine stalls past its cycle budget on the victim.
    RecoveryStall,
}

impl RecoveryFaultKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryFaultKind::ChainCycle => "chain_cycle",
            RecoveryFaultKind::EnginePanic => "engine_panic",
            RecoveryFaultKind::PanicStorm => "panic_storm",
            RecoveryFaultKind::CrashBootFailure => "crash_boot_failure",
            RecoveryFaultKind::RecoveryStall => "recovery_stall",
        }
    }

    fn draw(rng: &mut SimRng) -> Self {
        match rng.next_u64() % 5 {
            0 => RecoveryFaultKind::ChainCycle,
            1 => RecoveryFaultKind::EnginePanic,
            2 => RecoveryFaultKind::PanicStorm,
            3 => RecoveryFaultKind::CrashBootFailure,
            _ => RecoveryFaultKind::RecoveryStall,
        }
    }
}

/// Classified outcome of one recovery under injected faults, ordered from
/// best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Every process resurrected at the full rung.
    FullResurrection,
    /// At least one process needed a weaker engine rung but kept (most of)
    /// its state.
    Degraded,
    /// At least one process was restarted clean from the registry (data
    /// lost, application running).
    CleanRestart,
    /// Recovery escalated to a restart-only generation-2 crash kernel.
    Gen2Restart,
    /// Some process failed outright, but the microreboot completed.
    PerProcessFailure,
    /// The whole microreboot was lost (a classified error — never a
    /// propagated panic).
    WholeFailure,
}

impl RecoveryOutcome {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryOutcome::FullResurrection => "full_resurrection",
            RecoveryOutcome::Degraded => "degraded",
            RecoveryOutcome::CleanRestart => "clean_restart",
            RecoveryOutcome::Gen2Restart => "gen2_restart",
            RecoveryOutcome::PerProcessFailure => "per_process_failure",
            RecoveryOutcome::WholeFailure => "whole_failure",
        }
    }
}

/// One experiment's paired result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// The injected fault kind.
    pub fault: RecoveryFaultKind,
    /// Outcome with the supervisor enabled.
    pub with_supervisor: RecoveryOutcome,
    /// Outcome with the supervisor disabled.
    pub without_supervisor: RecoveryOutcome,
}

/// Outcome counts for one supervisor setting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySide {
    /// Full-rung resurrections.
    pub full: usize,
    /// Degraded (weaker rung, state kept).
    pub degraded: usize,
    /// Clean restarts from the registry.
    pub clean_restart: usize,
    /// Generation-2 escalations.
    pub gen2: usize,
    /// Completed microreboots with a failed process.
    pub per_process_failure: usize,
    /// Whole-microreboot failures.
    pub whole_failure: usize,
    /// Contained engine panics (from the reports).
    pub contained_panics: u64,
    /// Recovery-watchdog firings (from the reports).
    pub watchdog_fires: u64,
}

impl RecoverySide {
    fn count(&mut self, outcome: RecoveryOutcome) {
        match outcome {
            RecoveryOutcome::FullResurrection => self.full += 1,
            RecoveryOutcome::Degraded => self.degraded += 1,
            RecoveryOutcome::CleanRestart => self.clean_restart += 1,
            RecoveryOutcome::Gen2Restart => self.gen2 += 1,
            RecoveryOutcome::PerProcessFailure => self.per_process_failure += 1,
            RecoveryOutcome::WholeFailure => self.whole_failure += 1,
        }
    }

    /// Experiments where the application layer survived in some form
    /// (anything but a whole-microreboot failure).
    pub fn survived(&self) -> usize {
        self.full + self.degraded + self.clean_restart + self.gen2 + self.per_process_failure
    }
}

/// Aggregated recovery-robustness campaign (the new bench table's data).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryCampaignResult {
    /// Paired experiments run.
    pub experiments: usize,
    /// Counts with the supervisor enabled.
    pub with_supervisor: RecoverySide,
    /// Counts with the supervisor disabled.
    pub without_supervisor: RecoverySide,
    /// Panics that escaped `microreboot()` into the campaign harness. The
    /// supervisor's containment guarantee is that this stays zero.
    pub panic_escapes: usize,
    /// Per-experiment records in campaign order.
    pub records: Vec<RecoveryRecord>,
}

/// Configuration of the recovery campaign.
#[derive(Debug, Clone)]
pub struct RecoveryCampaignConfig {
    /// Paired (on/off) experiments to run.
    pub experiments: usize,
    /// Campaign seed (experiment `i` uses
    /// [`experiment_seed`]`(seed, i)`).
    pub seed: u64,
    /// Worker threads for the sharded engine: `0` = auto (`OW_JOBS`, then
    /// available parallelism). Results are identical for every value.
    pub jobs: usize,
}

impl Default for RecoveryCampaignConfig {
    fn default() -> Self {
        RecoveryCampaignConfig {
            experiments: 40,
            seed: 0x5ec0_4e4a, // distinct from the Table 5 campaign seed
            jobs: 0,
        }
    }
}

/// The applications each experiment boots and drives before the crash. Four
/// processes give the panic-storm path (threshold 3) a process to spare.
const APPS: [&str; 4] = ["vi", "mysqld", "httpd", "joe"];

fn machine_config() -> MachineConfig {
    MachineConfig {
        ram_frames: 8192, // 32 MiB
        cpus: 2,
        tlb_entries: 64,
        cost: CostModel::zero_io(),
    }
}

/// Boots the standard four-app system, drives each workload a little, and
/// panics the kernel — the deterministic "dead kernel" every recovery
/// experiment starts from.
fn build_dead_system(seed: u64) -> Kernel {
    let machine = ow_kernel::standard_machine(machine_config());
    let mut k = Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry())
        .expect("cold boot");
    for name in APPS {
        let mut w = ow_apps::make_workload(name, workload_stream_seed(seed));
        let pid = w.setup(&mut k);
        for _ in 0..3 {
            w.drive(&mut k, pid);
        }
    }
    k.do_panic(ow_kernel::PanicCause::Oops("recovery-campaign crash"));
    k
}

/// Splices a CRC-valid cycle into the `victim`-th selected process's VMA
/// chain in the dead kernel's memory: the last VMA's `next` is pointed back
/// at the head, so a naive walk never terminates. The write goes through
/// the normal record codec, so the corruption is *not* detectable by
/// checksums — only the chain guard catches it.
fn inject_chain_cycle(k: &mut Kernel, victim: usize) {
    let Some(PanicOutcome::Handoff(info)) = k.panicked else {
        return;
    };
    let mut stats = ReadStats::default();
    let Ok(header) = reader::read_header(&k.machine.phys, info.dead_kernel_frame, &mut stats)
    else {
        return;
    };
    let selected: Vec<_> = reader::read_proc_list(&k.machine.phys, &header, &mut stats)
        .unwrap_or_default()
        .into_iter()
        .filter(|(_, d)| d.state != pstate::EXITED && APPS.contains(&d.name.as_str()))
        .collect();
    let Some((_, desc)) = selected.get(victim % selected.len().max(1)) else {
        return;
    };
    let Ok(vmas) = reader::read_vmas(&k.machine.phys, desc, &mut stats) else {
        return;
    };
    let (Some((head_addr, _)), Some((tail_addr, tail))) = (vmas.first(), vmas.last()) else {
        return;
    };
    let mut looped = tail.clone();
    looped.next = *head_addr;
    looped
        .write(&mut k.machine.phys, *tail_addr)
        .expect("rewrite tail VMA");
}

/// Builds the fault plan (and pre-corrupts dead memory) for one experiment.
fn arm_fault(k: &mut Kernel, kind: RecoveryFaultKind, rng: &mut SimRng) -> RecoveryFaultPlan {
    let victim = (rng.next_u64() % APPS.len() as u64) as usize;
    let mut plan = RecoveryFaultPlan::default();
    match kind {
        RecoveryFaultKind::ChainCycle => inject_chain_cycle(k, victim),
        RecoveryFaultKind::EnginePanic => {
            let panics_through = match rng.next_u64() % 3 {
                0 => LadderRung::Full,
                1 => LadderRung::NoSwapMigration,
                _ => LadderRung::AnonymousOnly,
            };
            plan.engine_panics.push(EnginePanicFault {
                victim,
                panics_through,
            });
        }
        RecoveryFaultKind::PanicStorm => {
            // Every process's engine dies at every rung: the storm counter
            // crosses the threshold and recovery must escalate.
            for v in 0..APPS.len() {
                plan.engine_panics.push(EnginePanicFault {
                    victim: v,
                    panics_through: LadderRung::AnonymousOnly,
                });
            }
        }
        RecoveryFaultKind::CrashBootFailure => plan.crash_boot_failures = 1,
        RecoveryFaultKind::RecoveryStall => plan.stalls.push(StallFault {
            victim,
            cycles: 600 * CYCLES_PER_SEC,
        }),
    }
    plan
}

/// Classifies a completed microreboot report.
fn classify(report: &MicrorebootReport) -> RecoveryOutcome {
    if report.supervisor.escalated {
        RecoveryOutcome::Gen2Restart
    } else if report
        .procs
        .iter()
        .any(|p| matches!(p.outcome, ProcOutcome::RestartedClean))
    {
        RecoveryOutcome::CleanRestart
    } else if report.procs.iter().any(|p| p.rung != LadderRung::Full) {
        RecoveryOutcome::Degraded
    } else if report.procs.iter().any(|p| !p.outcome.is_success()) {
        RecoveryOutcome::PerProcessFailure
    } else {
        RecoveryOutcome::FullResurrection
    }
}

/// Runs one recovery experiment: build the dead system, arm `kind`, run the
/// microreboot with the supervisor `enabled`, classify. Returns the outcome
/// plus supervisor counters and whether a panic escaped the microreboot.
pub fn run_recovery_experiment(
    seed: u64,
    kind: RecoveryFaultKind,
    enabled: bool,
) -> (RecoveryOutcome, u64, u64, bool) {
    let mut rng = SimRng::seed_from_u64(stream_seed(seed, STREAM_RECOVERY_ARM));
    let mut k = build_dead_system(seed);
    let plan = arm_fault(&mut k, kind, &mut rng);
    let config = OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only(APPS)),
        supervisor: SupervisorConfig {
            enabled,
            ..SupervisorConfig::default()
        },
        recovery_faults: plan,
        ..OtherworldConfig::default()
    };
    match catch_unwind(AssertUnwindSafe(|| microreboot(k, &config))) {
        Ok(Ok((_k2, report))) => (
            classify(&report),
            report.supervisor.contained_panics as u64,
            report.supervisor.watchdog_fires as u64,
            false,
        ),
        Ok(Err(_failure)) => (RecoveryOutcome::WholeFailure, 0, 0, false),
        Err(_panic) => (RecoveryOutcome::WholeFailure, 0, 0, true),
    }
}

/// One sharded work item: a paired experiment's raw results before the
/// seed-ordered merge.
struct PairedRun {
    kind: RecoveryFaultKind,
    on: (RecoveryOutcome, u64, u64, bool),
    off: (RecoveryOutcome, u64, u64, bool),
}

/// Runs the full paired campaign: each seeded experiment draws one fault
/// kind and runs twice (supervisor on, then off) on identically built
/// systems.
///
/// Experiments are sharded across `cfg.jobs` workers by the deterministic
/// engine; the merger folds each pair's counts in seed order, so the
/// result is identical for every job count. A panic escaping even the
/// in-experiment `catch_unwind` (i.e. out of the worker's whole item) is
/// contained by the engine and recorded as a paired whole-failure with a
/// counted escape — never a poisoned channel or a deadlocked merger.
pub fn run_recovery_campaign(cfg: &RecoveryCampaignConfig) -> RecoveryCampaignResult {
    let mut result = RecoveryCampaignResult::default();
    engine::run_indexed(
        cfg.jobs,
        Some(cfg.experiments as u64),
        |i| {
            let seed = experiment_seed(cfg.seed, i);
            let mut rng = SimRng::seed_from_u64(stream_seed(seed, STREAM_RECOVERY_KIND));
            let kind = RecoveryFaultKind::draw(&mut rng);
            PairedRun {
                kind,
                on: run_recovery_experiment(seed, kind, true),
                off: run_recovery_experiment(seed, kind, false),
            }
        },
        |_, item| {
            let run = item.unwrap_or(PairedRun {
                // The worker itself panicked: count both sides as whole
                // failures and an escaped panic, keep the campaign alive.
                kind: RecoveryFaultKind::EnginePanic,
                on: (RecoveryOutcome::WholeFailure, 0, 0, true),
                off: (RecoveryOutcome::WholeFailure, 0, 0, false),
            });
            let (on, panics, fires, escaped_on) = run.on;
            result.with_supervisor.count(on);
            result.with_supervisor.contained_panics += panics;
            result.with_supervisor.watchdog_fires += fires;

            let (off, panics, fires, escaped_off) = run.off;
            result.without_supervisor.count(off);
            result.without_supervisor.contained_panics += panics;
            result.without_supervisor.watchdog_fires += fires;

            result.panic_escapes += usize::from(escaped_on) + usize::from(escaped_off);
            result.records.push(RecoveryRecord {
                fault: run.kind,
                with_supervisor: on,
                without_supervisor: off,
            });
            result.experiments += 1;
            true
        },
    );
    result
}
