//! The crash-point campaign: every labeled crash point × every Table 5
//! application × every protection mode, each cell driven through the full
//! panic→NMI→handoff→crash-boot→resurrect→morph pipeline.
//!
//! Where [`crate::campaign`] reproduces the paper's methodology — *random*
//! wild writes that exercise the recovery machinery only by chance — this
//! module implements the FIRST-style complement: arm exactly one
//! compile-time-labeled crash point ([`ow_crashpoint`]), run the workload
//! until the point fires (or induce the panic if the armed point lives on
//! the panic/recovery side), recover, and check the outcome against a
//! per-point policy. Every cell is an independent, named, reproducible
//! experiment: the cell seed is derived from (label, app, mode) alone, so
//! re-running one failed cell by label reproduces it bit-for-bit no matter
//! what the rest of the matrix looked like.
//!
//! The matrix shards on the deterministic parallel engine
//! ([`crate::engine`]): cells run concurrently, each entirely on one worker
//! thread (the arming state is thread-scoped), and results are merged in
//! matrix order — the JSON export is byte-identical for every `--jobs`
//! value.
//!
//! ## Expected outcomes
//!
//! A crash point is not a bug; the *policy* says what surviving it must
//! look like, ReHype-style:
//!
//! * **Workload-side points** (syscall, pagecache, page fault, swap): the
//!   kernel dies mid-operation and the app must come back with its data
//!   intact — or the point is simply not reached by this workload.
//! * **Panic-path points**: the first panic attempt dies *inside*
//!   `do_panic`; the retry (a watchdog re-entry, modeled by calling
//!   `do_panic` again on the frozen kernel) must complete the handoff and
//!   recover fully.
//! * **Global recovery points** (crash boot, global readers, ladder
//!   transition, gen-2 escalation, kexec/morph): a fault in the recovery
//!   manager's own spine is fatal to the microreboot — the cell must end
//!   in a *contained* abandonment, never a harness panic.
//! * **Per-process recovery points** (per-proc readers, resurrect stages):
//!   the supervisor contains the fault and retries at a weaker ladder
//!   rung; the app must come back alive, degraded.

use crate::campaign::{machine_config, recover_flight, workload_stream_seed};
use crate::engine;
use ow_apps::VerifyResult;
use ow_core::supervisor;
use ow_core::{
    microreboot, EnginePanicFault, LadderRung, MicrorebootFailure, MorphMode, OtherworldConfig,
    PolicySource, RecoveryFaultPlan, ResurrectionPolicy, ResurrectionStrategy,
};
use ow_crashpoint::{Area, REGISTRY};
use ow_kernel::{Kernel, KernelConfig, PanicCause, PanicOutcome};
use ow_simhw::stream_seed;
use ow_trace::json::Value;
use ow_trace::EventKind;

/// Default base seed of the crash-point campaign.
pub const CRASHPOINT_SEED: u64 = 0x0c7a_5b07;

/// Workload batches run before arming (the app builds up real state).
const WARMUP_BATCHES: u32 = 4;

/// Workload batches run with the point armed before the panic is induced.
const DRIVE_BATCHES: u32 = 10;

/// FNV-1a over a byte string; the label/app component of a cell seed.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed of one cell. Derived from the cell's own coordinates only —
/// never from its position in the matrix — so a single cell re-run by
/// label is bit-identical to the same cell inside the full campaign.
pub fn cell_seed(base: u64, label: &str, app: &str, protected: bool) -> u64 {
    let s = stream_seed(base, fnv1a64(label.as_bytes()));
    let s = stream_seed(s, fnv1a64(app.as_bytes()));
    stream_seed(s, protected as u64)
}

/// One cell of the campaign matrix.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// The armed crash-point label.
    pub label: String,
    /// Application name (a [`ow_apps::TABLE5_APPS`] entry).
    pub app: String,
    /// Memory-protected mode.
    pub protected: bool,
    /// Cell seed ([`cell_seed`]).
    pub seed: u64,
    /// Morph mode the recovery runs under (campaign-wide knob).
    pub morph: MorphMode,
    /// Page-materialization strategy (campaign-wide knob).
    pub strategy: ResurrectionStrategy,
    /// Whether rollback-in-place (the ladder's rung 0) is enabled for the
    /// cell's recovery (campaign-wide knob).
    pub rollback: bool,
}

/// What happened in one cell, after the full pipeline ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The armed point was never reached and the clean recovery was fully
    /// intact (the only acceptable way not to fire).
    NotReached,
    /// The point fired and the app came back at the full rung with its
    /// data verified against the shadow model.
    RecoveredIntact,
    /// The app came back at the full rung but its data diverged.
    DataDiverged(String),
    /// The supervisor degraded the app to a weaker ladder rung, but it is
    /// alive.
    RecoveredDegraded(LadderRung),
    /// Recovery completed but this process did not survive.
    ProcFailed(String),
    /// The whole microreboot was abandoned (contained by the supervisor's
    /// outer boundary — the machine is lost, the harness is not).
    Abandoned(String),
    /// An invariant violation: a foreign panic, a lost flight record, an
    /// unreadable resurrected descriptor, or an unarmed point that left
    /// recovery degraded.
    Unexpected(String),
}

impl CellOutcome {
    /// Short stable name for JSON and tables.
    pub fn kind(&self) -> &'static str {
        match self {
            CellOutcome::NotReached => "not_reached",
            CellOutcome::RecoveredIntact => "recovered_intact",
            CellOutcome::DataDiverged(_) => "data_diverged",
            CellOutcome::RecoveredDegraded(_) => "recovered_degraded",
            CellOutcome::ProcFailed(_) => "proc_failed",
            CellOutcome::Abandoned(_) => "abandoned",
            CellOutcome::Unexpected(_) => "unexpected",
        }
    }

    /// The outcome's detail string, when it carries one.
    pub fn detail(&self) -> &str {
        match self {
            CellOutcome::DataDiverged(s)
            | CellOutcome::ProcFailed(s)
            | CellOutcome::Abandoned(s)
            | CellOutcome::Unexpected(s) => s,
            CellOutcome::RecoveredDegraded(rung) => rung.name(),
            _ => "",
        }
    }
}

/// One classified cell.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// The cell's coordinates.
    pub spec: CellSpec,
    /// What happened.
    pub outcome: CellOutcome,
    /// Whether the armed point fired at all.
    pub fired: bool,
    /// Where it fired: `workload`, `panic`, `recovery`, or `none`.
    pub phase: &'static str,
    /// Post-recovery ground-truth check against the app's shadow model
    /// (`intact` / `corrupted` / `missing` / `skipped`).
    pub verify: &'static str,
    /// Whether the outcome matches the per-point policy.
    pub expected: bool,
}

/// The recovery-fault baseline a label needs so its code path is reachable
/// at all. Points inside the degradation ladder, gen-2 escalation and the
/// restart-only path only execute when recovery is already under stress;
/// the plan supplies that stress deterministically.
pub fn baseline_plan(label: &str) -> RecoveryFaultPlan {
    match label {
        // Reachable only after a hard per-process fault at the full rung.
        "recovery.ladder.rung.degrade" => RecoveryFaultPlan {
            engine_panics: vec![EnginePanicFault {
                victim: 0,
                panics_through: LadderRung::Full,
            }],
            ..RecoveryFaultPlan::default()
        },
        // Reachable only when the ladder has descended to its bottom rung.
        "recovery.ladder.clean.restart" => RecoveryFaultPlan {
            engine_panics: vec![EnginePanicFault {
                victim: 0,
                panics_through: LadderRung::AnonymousOnly,
            }],
            ..RecoveryFaultPlan::default()
        },
        // Reachable only when the first crash-kernel boot fails.
        "recovery.supervisor.gen2.escalate" | "recovery.restart.names.read" => RecoveryFaultPlan {
            crash_boot_failures: 1,
            ..RecoveryFaultPlan::default()
        },
        _ => RecoveryFaultPlan::default(),
    }
}

/// Whether `outcome` is acceptable for `label` under the ReHype-style
/// per-point policy described in the module docs.
pub fn outcome_expected(
    label: &str,
    outcome: &CellOutcome,
    morph: MorphMode,
    rollback: bool,
) -> bool {
    let Some(point) = ow_crashpoint::spec(label) else {
        return false;
    };
    // With rung 0 enabled, a fresh panic-sealed epoch validates for every
    // cell, so the rollback absorbs the induced panic before the crash
    // kernel ever boots: the entire recovery side below the rollback is
    // simply never reached, and workload/panic-side cells must come back
    // intact the same way a full resurrection would (restart-delivery
    // semantics are identical, §3.5).
    if rollback {
        return match point.area {
            // The epoch seal is on the workload side (periodic cadence)
            // and on the panic path; a consumed point lets the retry seal.
            Area::Checkpoint => matches!(
                outcome,
                CellOutcome::NotReached | CellOutcome::RecoveredIntact
            ),
            // Rollback's own points are contained and fall through to the
            // ordinary full microreboot; the fallback marker only runs on
            // that fall-through path, which a healthy checkpoint never
            // takes.
            Area::Rollback => match label {
                "recovery.rollback.fallback.microreboot" => {
                    matches!(outcome, CellOutcome::NotReached)
                }
                _ => matches!(outcome, CellOutcome::RecoveredIntact),
            },
            // Workload-side tears and panic-path deaths are absorbed by
            // rung 0 (or never reached by this workload).
            Area::Syscall | Area::PageCache | Area::PageFault | Area::Vm | Area::Swap => matches!(
                outcome,
                CellOutcome::NotReached | CellOutcome::RecoveredIntact
            ),
            Area::PanicPath => matches!(outcome, CellOutcome::RecoveredIntact),
            // Everything below the rollback in the recovery pipeline is
            // unreachable when rung 0 absorbs the panic.
            Area::CrashBoot
            | Area::Kexec
            | Area::Reader
            | Area::Resurrect
            | Area::Ladder
            | Area::Supervisor
            | Area::Restart
            | Area::Adopt => matches!(outcome, CellOutcome::NotReached),
        };
    }
    match point.area {
        // Without rung 0 the rollback path never executes, and the
        // periodic seal tears the kernel mid-workload like any other
        // workload-side point.
        Area::Checkpoint => matches!(
            outcome,
            CellOutcome::NotReached | CellOutcome::RecoveredIntact
        ),
        Area::Rollback => matches!(outcome, CellOutcome::NotReached),
        // The lazy copy-on-access pull can fire inside the *new* kernel
        // while the resurrected crash procedure touches memory — still
        // inside per-process containment, so it may also degrade.
        Area::PageFault if label == "kernel.pagefault.lazy.pull" => matches!(
            outcome,
            CellOutcome::NotReached
                | CellOutcome::RecoveredIntact
                | CellOutcome::RecoveredDegraded(_)
        ),
        // Workload-side: full recovery, or the workload never took the
        // path. The writeback walker is shared with resurrection's buffer
        // flush, so it may instead fire recovery-side and degrade.
        Area::Syscall | Area::PageFault | Area::Vm | Area::Swap => matches!(
            outcome,
            CellOutcome::NotReached | CellOutcome::RecoveredIntact
        ),
        Area::PageCache => matches!(
            outcome,
            CellOutcome::NotReached
                | CellOutcome::RecoveredIntact
                | CellOutcome::RecoveredDegraded(_)
        ),
        // The panic path always runs; the watchdog retry must hand off.
        Area::PanicPath => matches!(outcome, CellOutcome::RecoveredIntact),
        // The recovery spine: a fault here loses the machine, contained.
        // The two morph halves are mode-dependent — a cold morph never
        // reaches the adopt path and a fully warm one never reclaims.
        Area::CrashBoot | Area::Kexec | Area::Supervisor => match label {
            "kernel.kexec.reclaim.memory" | "kernel.kexec.adopt.frames" => {
                matches!(outcome, CellOutcome::Abandoned(_) | CellOutcome::NotReached)
            }
            _ => matches!(outcome, CellOutcome::Abandoned(_)),
        },
        // Warm-morph adoption is validate-then-adopt with a per-structure
        // cold fallback: seal validation and the swap-bitmap copy are
        // contained and degrade to the cold path with full fidelity; the
        // cache re-chain runs inside the per-process attempt and retries
        // one rung weaker.
        Area::Adopt => match label {
            "recovery.adopt.cache.rebuild" => matches!(
                outcome,
                CellOutcome::NotReached | CellOutcome::RecoveredDegraded(_)
            ),
            _ => matches!(
                outcome,
                CellOutcome::NotReached | CellOutcome::RecoveredIntact
            ),
        },
        Area::Reader => match label {
            // Global readers run outside the per-process containment — a
            // crash in the spine read loses the machine. Under a warm
            // morph the best-effort adopt pass re-reads the header and
            // proc list first; an armed hit consumed there is absorbed by
            // the per-structure cold fallback and the spine read then
            // succeeds, so the recovery can also finish intact.
            "recovery.reader.header.validate" | "recovery.reader.proclist.walk" => {
                matches!(outcome, CellOutcome::Abandoned(_))
                    || (morph == MorphMode::Warm && matches!(outcome, CellOutcome::RecoveredIntact))
            }
            // The adopt pass's cache walk also reads every file table
            // before any per-process stage, with the same absorption.
            "recovery.reader.filetable.read" => {
                matches!(outcome, CellOutcome::RecoveredDegraded(_))
                    || (morph == MorphMode::Warm && matches!(outcome, CellOutcome::RecoveredIntact))
            }
            _ => matches!(outcome, CellOutcome::RecoveredDegraded(_)),
        },
        // Per-process stages: contained, retried at a weaker rung.
        Area::Resurrect => matches!(outcome, CellOutcome::RecoveredDegraded(_)),
        Area::Ladder => match label {
            // The rung transition itself is outside containment.
            "recovery.ladder.rung.degrade" => matches!(outcome, CellOutcome::Abandoned(_)),
            // The bottom rung dies inside containment: the process is
            // lost, the microreboot is not.
            _ => matches!(
                outcome,
                CellOutcome::ProcFailed(_)
                    | CellOutcome::RecoveredDegraded(LadderRung::CleanRestart)
            ),
        },
        // The gen-2 dead-list read is best-effort by design: its failure
        // falls back to registry names and clean restarts.
        Area::Restart => matches!(
            outcome,
            CellOutcome::RecoveredDegraded(LadderRung::CleanRestart)
        ),
    }
}

fn failure_text(e: &MicrorebootFailure) -> String {
    match e {
        MicrorebootFailure::NotPanicked => "kernel had not panicked".to_string(),
        MicrorebootFailure::SystemHalted(w) => format!("system halted: {w}"),
        MicrorebootFailure::CrashBootFailed(w) => format!("crash boot failed: {w}"),
        MicrorebootFailure::RecoveryFailed(w) => format!("recovery failed: {w}"),
    }
}

/// Runs one cell: boot, warm up, arm, drive, crash, microreboot, classify.
/// Everything happens on the calling thread (the arming is thread-scoped).
pub fn run_cell(spec: &CellSpec) -> CellRecord {
    ow_crashpoint::reset();
    let record = |outcome: CellOutcome, fired: bool, phase, verify| {
        let expected = outcome_expected(&spec.label, &outcome, spec.morph, spec.rollback);
        CellRecord {
            spec: spec.clone(),
            outcome,
            fired,
            phase,
            verify,
            expected,
        }
    };
    if ow_crashpoint::spec(&spec.label).is_none() {
        return record(
            CellOutcome::Unexpected("label not in registry".into()),
            false,
            "none",
            "skipped",
        );
    }

    let kernel_config = KernelConfig {
        user_protection: spec.protected,
        ..KernelConfig::default()
    };
    let machine = ow_kernel::standard_machine(machine_config());
    let mut k = match Kernel::boot_cold(machine, kernel_config, ow_apps::full_registry()) {
        Ok(k) => k,
        Err(e) => {
            return record(
                CellOutcome::Unexpected(format!("cold boot: {e}")),
                false,
                "none",
                "skipped",
            )
        }
    };
    let mut workload = ow_apps::make_workload(&spec.app, workload_stream_seed(spec.seed));
    let pid = workload.setup(&mut k);
    for _ in 0..WARMUP_BATCHES {
        workload.drive(&mut k, pid);
    }

    ow_crashpoint::arm(&spec.label, 1);
    let mut phase = "none";

    // Drive with the point armed: workload-side points tear the kernel
    // mid-operation, leaving physical memory frozen at the crash instant.
    let drove = supervisor::contain(|| {
        for _ in 0..DRIVE_BATCHES {
            workload.drive(&mut k, pid);
        }
    });
    match drove {
        Ok(()) => {}
        Err(msg) => match ow_crashpoint::fired_label(&msg) {
            Some(l) if l == spec.label => phase = "workload",
            _ => {
                return record(
                    CellOutcome::Unexpected(format!("foreign panic during drive: {msg}")),
                    false,
                    "workload",
                    "skipped",
                )
            }
        },
    }

    // The kernel now dies: either the crash point already fired, or this
    // is the induced oops that gives the cell its crash (panic-path and
    // recovery-side points fire from here on).
    if k.panicked.is_none() {
        let cause = PanicCause::Oops("crashpoint campaign");
        match supervisor::contain(|| k.do_panic(cause)) {
            Ok(_) => {}
            Err(msg) => match ow_crashpoint::fired_label(&msg) {
                Some(l) if l == spec.label => {
                    phase = "panic";
                    // The first attempt died inside the panic path; the
                    // point is consumed, so the watchdog's re-entry (a
                    // second do_panic on the frozen kernel) completes.
                    k.do_panic(cause);
                }
                _ => {
                    return record(
                        CellOutcome::Unexpected(format!("foreign panic in do_panic: {msg}")),
                        phase != "none",
                        phase,
                        "skipped",
                    )
                }
            },
        }
    }
    match &k.panicked {
        Some(PanicOutcome::Handoff(_)) => {}
        Some(PanicOutcome::SystemHalted(why)) => {
            return record(
                CellOutcome::Unexpected(format!("panic path halted: {why}")),
                phase != "none",
                phase,
                "skipped",
            )
        }
        None => {
            return record(
                CellOutcome::Unexpected("kernel did not panic".into()),
                phase != "none",
                phase,
                "skipped",
            )
        }
    }

    // Flight-record invariant: the dead kernel's panic milestones must be
    // recoverable from the trace region before the crash kernel boots.
    let flight = recover_flight(&k);
    let panic_steps = flight.event_counts().get(EventKind::PanicStep);

    let ow_config = OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only([workload.name()])),
        recovery_faults: baseline_plan(&spec.label),
        morph: spec.morph,
        strategy: spec.strategy,
        rollback: spec.rollback,
        ..OtherworldConfig::default()
    };
    let result = microreboot(k, &ow_config);
    let fired = ow_crashpoint::fired().is_some();
    if fired && phase == "none" {
        phase = "recovery";
    }
    // Disarm before reconnect/verify: an unreached workload-side point
    // must not fire inside the *new* kernel while we check ground truth.
    ow_crashpoint::reset();

    let (mut k2, report) = match result {
        Ok(ok) => ok,
        Err(e) => {
            return record(
                CellOutcome::Abandoned(failure_text(&e)),
                fired,
                phase,
                "skipped",
            )
        }
    };
    if panic_steps == 0 {
        return record(
            CellOutcome::Unexpected("flight record lost the panic milestones".into()),
            fired,
            phase,
            "skipped",
        );
    }
    let Some(pr) = report.proc_named(workload.name()) else {
        return record(
            CellOutcome::ProcFailed("not in recovery report".into()),
            fired,
            phase,
            "skipped",
        );
    };
    let rung = pr.rung;
    let outcome_desc = format!("{:?}", pr.outcome);
    let survived =
        pr.outcome.is_success() || matches!(pr.outcome, ow_core::ProcOutcome::RestartedClean);
    if !survived {
        return record(
            CellOutcome::ProcFailed(outcome_desc),
            fired,
            phase,
            "skipped",
        );
    }
    let Some(new_pid) = pr.new_pid else {
        return record(
            CellOutcome::ProcFailed(outcome_desc),
            fired,
            phase,
            "skipped",
        );
    };

    // Descriptor invariant: the resurrected process must read back through
    // the checksummed descriptor codec.
    if k2.read_desc(new_pid).is_err() {
        return record(
            CellOutcome::Unexpected("resurrected descriptor unreadable".into()),
            fired,
            phase,
            "skipped",
        );
    }

    // App ground truth against the shadow model.
    let verified = supervisor::contain(|| {
        workload.reconnect(&mut k2, new_pid);
        for _ in 0..8 {
            k2.run_step();
        }
        workload.verify(&mut k2, new_pid)
    });
    let verify = match &verified {
        Ok(VerifyResult::Intact) => "intact",
        Ok(VerifyResult::Corrupted(_)) => "corrupted",
        Ok(VerifyResult::Missing) => "missing",
        Err(_) => "panicked",
    };

    // Rung 0 (`RollbackInPlace`) is *stronger* than a full resurrection,
    // not weaker: only rungs below `Full` count as degraded.
    let outcome = if rung > LadderRung::Full {
        CellOutcome::RecoveredDegraded(rung)
    } else if !fired {
        match verified {
            Ok(VerifyResult::Intact) => CellOutcome::NotReached,
            _ => CellOutcome::Unexpected(format!(
                "point never fired yet clean recovery was not intact (verify: {verify})"
            )),
        }
    } else {
        match verified {
            Ok(VerifyResult::Intact) => CellOutcome::RecoveredIntact,
            Ok(VerifyResult::Corrupted(why)) => CellOutcome::DataDiverged(why),
            Ok(VerifyResult::Missing) => CellOutcome::ProcFailed("gone after recovery".into()),
            Err(msg) => CellOutcome::Unexpected(format!("verify panicked: {msg}")),
        }
    };
    record(outcome, fired, phase, verify)
}

/// Count-only discovery pass: run the cell flow for (`app`, `protected`)
/// with every marker counting instead of firing, through drive, panic and
/// a clean microreboot. Returns the reached labels with their hit counts,
/// sorted by label.
pub fn discover_points(app: &str, protected: bool, seed: u64) -> Vec<(&'static str, u64)> {
    ow_crashpoint::reset();
    let kernel_config = KernelConfig {
        user_protection: protected,
        ..KernelConfig::default()
    };
    let machine = ow_kernel::standard_machine(machine_config());
    let Ok(mut k) = Kernel::boot_cold(machine, kernel_config, ow_apps::full_registry()) else {
        return Vec::new();
    };
    let mut workload = ow_apps::make_workload(app, workload_stream_seed(seed));
    let pid = workload.setup(&mut k);
    for _ in 0..WARMUP_BATCHES {
        workload.drive(&mut k, pid);
    }
    ow_crashpoint::start_counting();
    for _ in 0..DRIVE_BATCHES {
        workload.drive(&mut k, pid);
    }
    k.do_panic(PanicCause::Oops("crashpoint discovery"));
    let ow_config = OtherworldConfig {
        policy: PolicySource::Inline(ResurrectionPolicy::only([workload.name()])),
        ..OtherworldConfig::default()
    };
    let _ = microreboot(k, &ow_config);
    let counts = ow_crashpoint::take_counts();
    ow_crashpoint::reset();
    counts
}

/// Configuration of a crash-point campaign (a sub-matrix selection).
#[derive(Debug, Clone)]
pub struct CrashpointCampaignConfig {
    /// Labels to arm; empty = every registry label.
    pub points: Vec<String>,
    /// Applications; empty = every Table 5 app.
    pub apps: Vec<String>,
    /// Protection modes; empty = both.
    pub modes: Vec<bool>,
    /// Base seed (cells derive theirs from label/app/mode, see
    /// [`cell_seed`]).
    pub seed: u64,
    /// Worker threads (`0` = auto). Output is identical for every value.
    pub jobs: usize,
    /// Morph mode every cell's recovery runs under (the warm/cold half of
    /// the four-configuration safety matrix).
    pub morph: MorphMode,
    /// Page-materialization strategy every cell runs under (the
    /// eager/lazy half of the matrix).
    pub strategy: ResurrectionStrategy,
    /// Whether every cell's recovery runs with rollback-in-place enabled
    /// (the rung-0 arm of the campaign).
    pub rollback: bool,
}

impl Default for CrashpointCampaignConfig {
    fn default() -> Self {
        CrashpointCampaignConfig {
            points: Vec::new(),
            apps: Vec::new(),
            modes: Vec::new(),
            seed: CRASHPOINT_SEED,
            jobs: 0,
            morph: MorphMode::Cold,
            strategy: ResurrectionStrategy::CopyPages,
            rollback: false,
        }
    }
}

/// The classified matrix.
#[derive(Debug, Clone)]
pub struct CrashpointCampaignResult {
    /// Every cell, in matrix order (label-major, then app, then mode).
    pub cells: Vec<CellRecord>,
    /// Cells whose outcome violated the per-point policy.
    pub unexpected: usize,
}

impl CrashpointCampaignResult {
    /// Tally of cells per outcome kind, sorted by kind name.
    pub fn by_kind(&self) -> Vec<(&'static str, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for c in &self.cells {
            *map.entry(c.outcome.kind()).or_insert(0) += 1;
        }
        map.into_iter().collect()
    }
}

/// Enumerates and runs the matrix on the deterministic parallel engine.
pub fn campaign_crashpoints(cfg: &CrashpointCampaignConfig) -> CrashpointCampaignResult {
    let points: Vec<String> = if cfg.points.is_empty() {
        REGISTRY.iter().map(|p| p.label.to_string()).collect()
    } else {
        cfg.points.clone()
    };
    let apps: Vec<String> = if cfg.apps.is_empty() {
        ow_apps::workload::TABLE5_APPS
            .iter()
            .map(|a| a.to_string())
            .collect()
    } else {
        cfg.apps.clone()
    };
    let modes: Vec<bool> = if cfg.modes.is_empty() {
        vec![false, true]
    } else {
        cfg.modes.clone()
    };

    let mut specs = Vec::new();
    for label in &points {
        for app in &apps {
            for &protected in &modes {
                specs.push(CellSpec {
                    label: label.clone(),
                    app: app.clone(),
                    protected,
                    seed: cell_seed(cfg.seed, label, app, protected),
                    morph: cfg.morph,
                    strategy: cfg.strategy,
                    rollback: cfg.rollback,
                });
            }
        }
    }

    let results = engine::parallel_map(cfg.jobs, &specs, |spec, _| run_cell(spec));
    let cells: Vec<CellRecord> = specs
        .iter()
        .zip(results)
        .map(|(spec, r)| match r {
            Ok(rec) => rec,
            Err(msg) => CellRecord {
                spec: spec.clone(),
                outcome: CellOutcome::Unexpected(format!("cell harness panicked: {msg}")),
                fired: false,
                phase: "none",
                verify: "skipped",
                expected: false,
            },
        })
        .collect();
    let unexpected = cells.iter().filter(|c| !c.expected).count();
    CrashpointCampaignResult { cells, unexpected }
}

/// Stable JSON export of a campaign (the artifact the determinism gate
/// diffs across `--jobs` values).
pub fn crashpoints_json(cfg: &CrashpointCampaignConfig, res: &CrashpointCampaignResult) -> Value {
    let cells: Vec<Value> = res
        .cells
        .iter()
        .map(|c| {
            Value::obj([
                ("label", Value::Str(c.spec.label.clone())),
                ("app", Value::Str(c.spec.app.clone())),
                (
                    "mode",
                    Value::Str(
                        if c.spec.protected {
                            "protected"
                        } else {
                            "unprotected"
                        }
                        .to_string(),
                    ),
                ),
                ("seed", Value::Str(format!("{:#018x}", c.spec.seed))),
                ("fired", Value::Bool(c.fired)),
                ("phase", Value::Str(c.phase.to_string())),
                ("outcome", Value::Str(c.outcome.kind().to_string())),
                ("detail", Value::Str(c.outcome.detail().to_string())),
                ("verify", Value::Str(c.verify.to_string())),
                ("expected", Value::Bool(c.expected)),
            ])
        })
        .collect();
    let by_kind: Vec<(String, Value)> = res
        .by_kind()
        .into_iter()
        .map(|(k, n)| (k.to_string(), Value::from(n as f64)))
        .collect();
    let morph = match cfg.morph {
        MorphMode::Cold => "cold",
        MorphMode::Warm => "warm",
    };
    let strategy = match cfg.strategy {
        ResurrectionStrategy::CopyPages => "copy",
        ResurrectionStrategy::MapPages => "map",
        ResurrectionStrategy::Lazy => "lazy",
    };
    Value::obj([
        ("schema_version", Value::from(1.0)),
        ("campaign", Value::Str("crashpoints".to_string())),
        ("seed", Value::Str(format!("{:#018x}", cfg.seed))),
        ("morph", Value::Str(morph.to_string())),
        ("strategy", Value::Str(strategy.to_string())),
        ("rollback", Value::Bool(cfg.rollback)),
        ("cells_total", Value::from(res.cells.len() as f64)),
        ("unexpected", Value::from(res.unexpected as f64)),
        ("by_outcome", Value::Object(by_kind.into_iter().collect())),
        ("cells", Value::Array(cells)),
    ])
}
