//! The flight recorder survives panic → handoff → recovery end-to-end for
//! every Table 5 application workload.

use ow_apps::{make_workload, workload::TABLE5_APPS};
use ow_core::{microreboot, OtherworldConfig, PolicySource, ResurrectionPolicy};
use ow_kernel::{Kernel, KernelConfig, PanicCause};
use ow_simhw::{machine::MachineConfig, CostModel};
use ow_trace::Counter;

#[test]
fn flight_survives_for_every_app_workload() {
    for &app in TABLE5_APPS.iter() {
        let machine = ow_kernel::standard_machine(MachineConfig {
            ram_frames: 8192, // 32 MiB, as in the campaigns
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: CostModel::zero_io(),
        });
        let mut k = Kernel::boot_cold(machine, KernelConfig::default(), ow_apps::full_registry())
            .expect("cold boot");
        let mut w = make_workload(app, 9);
        let pid = w.setup(&mut k);
        for _ in 0..6 {
            w.drive(&mut k, pid);
        }
        k.do_panic(PanicCause::Oops("e2e flight"));

        let config = OtherworldConfig {
            policy: PolicySource::Inline(ResurrectionPolicy::only([w.name()])),
            ..OtherworldConfig::default()
        };
        let (_k2, report) = microreboot(k, &config).expect("microreboot");
        let flight = &report.flight;
        assert!(flight.header_valid, "{app}: header lost");
        assert!(!flight.events.is_empty(), "{app}: empty flight record");
        assert!(
            flight.last_event().expect("events").is_panic_step(),
            "{app}: last event not a panic step: {:?}",
            flight.last_event()
        );
        assert!(
            flight.metrics.counter(Counter::Syscalls) > 0,
            "{app}: no syscalls on record"
        );
        assert_eq!(flight.corrupt_records, 0, "{app}: unexpected corruption");
    }
}
