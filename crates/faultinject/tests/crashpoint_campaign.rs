//! Determinism and reproduction contract of the crash-point campaign
//! (ISSUE 6, satellite 3): the JSON artifact is byte-identical for any
//! `--jobs`, any cell can be re-run in isolation by label and match the
//! full-matrix record, and the count-only discovery pass reaches a pinned
//! minimum of labeled points.

#![cfg(feature = "crashpoint")]

use ow_core::{MorphMode, ResurrectionStrategy};
use ow_faultinject::{
    campaign_crashpoints, crashpoints_json, discover_points, CrashpointCampaignConfig,
    CRASHPOINT_SEED,
};

/// A cross-area slice: kernel syscall/panic/kexec points plus recovery
/// readers and resurrection stages. Small enough to run three times.
const SLICE: &[&str] = &[
    "kernel.syscall.enter.marked",
    "kernel.panic.handoff.jump",
    "kernel.kexec.morph.main",
    "recovery.reader.proclist.walk",
    "recovery.resurrect.vma.rebuild",
    "recovery.ladder.clean.restart",
];

fn slice_cfg(jobs: usize) -> CrashpointCampaignConfig {
    CrashpointCampaignConfig {
        points: SLICE.iter().map(|s| (*s).to_string()).collect(),
        apps: vec!["vi".to_string()],
        modes: vec![false],
        seed: CRASHPOINT_SEED,
        jobs,
        ..CrashpointCampaignConfig::default()
    }
}

/// The warm-morph / lazy-resurrection half of the safety matrix: the same
/// adopt-and-recovery-path slice must report zero policy violations in
/// every one of the four (morph × strategy) configurations.
#[test]
fn every_recovery_configuration_passes_the_adopt_slice() {
    let points = [
        "kernel.panic.seal.write",
        "kernel.kexec.reclaim.memory",
        "kernel.kexec.adopt.frames",
        "kernel.pagefault.lazy.pull",
        "recovery.adopt.seal.validate",
        "recovery.adopt.swap.bitmap",
        "recovery.adopt.cache.rebuild",
        "recovery.reader.header.validate",
        "recovery.reader.filetable.read",
        "recovery.resurrect.pages.materialize",
    ];
    for morph in [MorphMode::Cold, MorphMode::Warm] {
        for strategy in [ResurrectionStrategy::CopyPages, ResurrectionStrategy::Lazy] {
            let res = campaign_crashpoints(&CrashpointCampaignConfig {
                points: points.iter().map(|s| (*s).to_string()).collect(),
                apps: vec!["vi".to_string()],
                modes: vec![false],
                morph,
                strategy,
                ..CrashpointCampaignConfig::default()
            });
            let bad: Vec<_> = res.cells.iter().filter(|c| !c.expected).collect();
            assert!(
                bad.is_empty(),
                "{morph:?}/{strategy:?}: unexpected cells {bad:?}"
            );
        }
    }
}

#[test]
fn campaign_json_is_identical_for_jobs_1_4_and_7() {
    let serial_cfg = slice_cfg(1);
    let serial = crashpoints_json(&serial_cfg, &campaign_crashpoints(&serial_cfg)).to_pretty();
    for jobs in [4, 7] {
        let cfg = slice_cfg(jobs);
        let parallel = crashpoints_json(&cfg, &campaign_crashpoints(&cfg)).to_pretty();
        assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn any_cell_is_reproducible_by_label_alone() {
    // The full vi/unprotected column: every registered point.
    let full = campaign_crashpoints(&CrashpointCampaignConfig {
        apps: vec!["vi".to_string()],
        modes: vec![false],
        ..CrashpointCampaignConfig::default()
    });
    assert_eq!(full.cells.len(), ow_crashpoint::REGISTRY.len());
    assert_eq!(full.unexpected, 0, "policy violated in the vi slice");

    // Re-run two cells in isolation, addressed only by their label, and
    // require the records to match the full-matrix run field for field.
    for label in [
        "kernel.pagecache.fsync.flush",
        "recovery.resurrect.files.reopen",
    ] {
        let solo = campaign_crashpoints(&CrashpointCampaignConfig {
            points: vec![label.to_string()],
            apps: vec!["vi".to_string()],
            modes: vec![false],
            ..CrashpointCampaignConfig::default()
        });
        assert_eq!(solo.cells.len(), 1);
        let a = &solo.cells[0];
        let b = full
            .cells
            .iter()
            .find(|c| c.spec.label == label)
            .expect("label present in full run");
        assert_eq!(
            a.spec.seed, b.spec.seed,
            "{label}: seed depends on matrix shape"
        );
        assert_eq!(a.outcome.kind(), b.outcome.kind(), "{label}");
        assert_eq!(a.outcome.detail(), b.outcome.detail(), "{label}");
        assert_eq!(
            (a.fired, a.phase, a.verify, a.expected),
            (b.fired, b.phase, b.verify, b.expected),
            "{label}"
        );
    }
}

#[test]
fn discovery_reaches_a_pinned_minimum_of_points() {
    for protected in [false, true] {
        let hits = discover_points("vi", protected, CRASHPOINT_SEED);
        assert!(
            hits.len() >= 20,
            "vi (protected={protected}) reached only {} points: {hits:?}",
            hits.len()
        );
        for must in [
            "kernel.syscall.enter.marked",
            "kernel.panic.handoff.jump",
            "kernel.crashboot.init.begin",
            "recovery.reader.header.validate",
            "recovery.resurrect.context.check",
        ] {
            assert!(
                hits.iter().any(|(l, n)| *l == must && *n > 0),
                "{must} not reached (protected={protected}): {hits:?}"
            );
        }
    }
}
