//! Small seeded campaigns to validate the Table 5 machinery end to end.

use ow_apps::vi::ViWorkload;
use ow_faultinject::{run_campaign, CampaignConfig};

#[test]
fn vi_campaign_mostly_succeeds() {
    let cfg = CampaignConfig {
        effective_experiments: 25,
        seed: 42,
        ..CampaignConfig::default()
    };
    let result = run_campaign(ViWorkload::new, &cfg);
    eprintln!("campaign: {result:?}");
    assert_eq!(result.effective, 25);
    assert!(
        result.success_pct() >= 80.0,
        "success {}%",
        result.success_pct()
    );
    assert!(result.discarded > 0, "expected some quiet experiments");
}

#[test]
fn campaigns_are_deterministic_under_a_seed() {
    let cfg = CampaignConfig {
        effective_experiments: 12,
        seed: 77,
        ..CampaignConfig::default()
    };
    let a = run_campaign(ViWorkload::new, &cfg);
    let b = run_campaign(ViWorkload::new, &cfg);
    assert_eq!(a.success, b.success);
    assert_eq!(a.boot_failure, b.boot_failure);
    assert_eq!(a.resurrect_failure, b.resurrect_failure);
    assert_eq!(a.data_corruption, b.data_corruption);
    assert_eq!(a.discarded, b.discarded);
}

#[test]
fn ablation_is_strictly_worse() {
    let base = CampaignConfig {
        effective_experiments: 60,
        seed: 7,
        ..CampaignConfig::default()
    };
    let fixed = run_campaign(ViWorkload::new, &base);
    let legacy_cfg = CampaignConfig {
        fixes: ow_kernel::RobustnessFixes::legacy(),
        ..base
    };
    let legacy = run_campaign(ViWorkload::new, &legacy_cfg);
    assert!(
        legacy.success_pct() < fixed.success_pct(),
        "legacy {:.1}% must be below fixed {:.1}%",
        legacy.success_pct(),
        fixed.success_pct()
    );
}

#[test]
fn protected_campaign_never_increases_corruption() {
    let base = CampaignConfig {
        effective_experiments: 60,
        seed: 3,
        ..CampaignConfig::default()
    };
    let unprot = run_campaign(ViWorkload::new, &base);
    let prot_cfg = CampaignConfig {
        user_protection: true,
        ..base
    };
    let prot = run_campaign(ViWorkload::new, &prot_cfg);
    assert!(prot.data_corruption <= unprot.data_corruption + 1);
}

#[test]
fn every_effective_outcome_carries_a_trace_cause() {
    let cfg = CampaignConfig {
        effective_experiments: 20,
        seed: 11,
        ..CampaignConfig::default()
    };
    let result = run_campaign(ViWorkload::new, &cfg);
    assert_eq!(result.records.len(), result.effective);
    for rec in &result.records {
        assert!(
            !rec.cause.is_empty(),
            "outcome {:?} lacks a cause annotation",
            rec.outcome
        );
    }
    // The dominant case: the flight record caught the injection and the
    // panic path itself.
    let panics = result
        .records
        .iter()
        .filter(|r| r.cause.contains("panic:"))
        .count();
    assert!(
        panics * 2 > result.records.len(),
        "most causes should name a panic step: {}/{}",
        panics,
        result.records.len()
    );
    assert!(
        result
            .records
            .iter()
            .any(|r| r.cause.contains("fault_injected")),
        "some tails should show the injection itself"
    );
}

#[test]
fn single_experiment_cause_ends_at_the_panic_path() {
    let cfg = CampaignConfig::default();
    // Scan seeds until one crashes (most do).
    for seed in 100..140 {
        let mut w = ViWorkload::new(seed);
        let (rec, _damage) = ow_faultinject::run_experiment(&mut w, &cfg, seed);
        if matches!(rec.outcome, ow_faultinject::Outcome::NoCrash) {
            continue;
        }
        assert!(rec.cause.contains("panic:"), "cause: {}", rec.cause);
        return;
    }
    panic!("no seed in 100..140 produced a crash");
}
