//! The parallel==serial determinism suite.
//!
//! The sharded campaign engine's contract: for the same seed, every job
//! count produces the *same* `CampaignResult` — down to per-experiment
//! records and flight-annotation merges — because the merger consumes
//! results in seed order and truncates to the same effective prefix the
//! serial loop would have kept. These tests pin that contract, the
//! RNG-stream decorrelation, the collision-free seed derivation, and the
//! engine's worker-panic containment.

use ow_apps::vi::ViWorkload;
use ow_apps::{VerifyResult, Workload};
use ow_faultinject::{
    experiment_seed, fault_stream_seed, run_campaign, run_recovery_campaign, workload_stream_seed,
    CampaignConfig, Outcome, RecoveryCampaignConfig,
};
use ow_kernel::Kernel;
use ow_simhw::SimRng;

fn small_cfg(jobs: usize) -> CampaignConfig {
    CampaignConfig {
        effective_experiments: 10,
        seed: 0xd00d_feed,
        jobs,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaign_results_are_identical_for_jobs_1_4_and_7() {
    let serial = run_campaign(ViWorkload::new, &small_cfg(1));
    assert_eq!(serial.effective, 10);
    for jobs in [4, 7] {
        let parallel = run_campaign(ViWorkload::new, &small_cfg(jobs));
        assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn recovery_campaign_is_identical_for_jobs_1_4_and_7() {
    let cfg = |jobs| RecoveryCampaignConfig {
        experiments: 8,
        seed: 0x5ec0_4e4a,
        jobs,
    };
    let serial = run_recovery_campaign(&cfg(1));
    assert_eq!(serial.experiments, 8);
    for jobs in [4, 7] {
        let parallel = run_recovery_campaign(&cfg(jobs));
        assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn workload_and_fault_streams_are_decorrelated() {
    // The historical bug: the same seed fed both make_workload() and the
    // fault injector, so the campaign's two sources of randomness drew
    // from perfectly correlated streams. The derived substreams must
    // differ in their first k draws for every seed in a sweep — and the
    // substream seeds themselves must never coincide.
    const K: usize = 16;
    for base in 0..200u64 {
        let es = experiment_seed(0x07e5_2010, base);
        let (ws, fs) = (workload_stream_seed(es), fault_stream_seed(es));
        assert_ne!(ws, fs, "substream seeds collide for experiment {base}");
        let mut w = SimRng::seed_from_u64(ws);
        let mut f = SimRng::seed_from_u64(fs);
        let wd: Vec<u64> = (0..K).map(|_| w.next_u64()).collect();
        let fd: Vec<u64> = (0..K).map(|_| f.next_u64()).collect();
        assert_ne!(wd, fd, "streams correlated for experiment {base}");
        // Stronger than whole-vector inequality: the streams must not be
        // shifted copies of each other either.
        assert!(
            !wd.iter().any(|d| fd.contains(d)),
            "stream overlap for experiment {base}"
        );
    }
}

#[test]
fn nearby_campaign_seeds_never_share_experiment_seeds() {
    // The historical bug: `seed.wrapping_add(i)` walks made campaigns with
    // nearby base seeds overlap seed ranges (base 100 experiment 7 ==
    // base 105 experiment 2). The mixed derivation keeps every
    // (campaign, experiment) pair distinct across a dense sweep.
    let mut seen = std::collections::HashSet::new();
    for base in 0..16u64 {
        for i in 0..256u64 {
            assert!(
                seen.insert(experiment_seed(0x07e5_2010 + base, i)),
                "campaign {base} experiment {i} collides with an earlier pair"
            );
        }
    }
}

/// A workload whose driver panics on selected seeds — the harness-bug
/// stand-in for the engine's containment guarantee.
struct PanickyWorkload {
    inner: ViWorkload,
    explode: bool,
}

impl PanickyWorkload {
    fn new(seed: u64) -> Self {
        PanickyWorkload {
            inner: ViWorkload::new(seed),
            // Deterministic in the workload seed, so every job count sees
            // the same panics at the same experiments.
            explode: seed % 3 == 0,
        }
    }
}

impl Workload for PanickyWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn setup(&mut self, k: &mut Kernel) -> u64 {
        self.inner.setup(k)
    }
    fn drive(&mut self, k: &mut Kernel, pid: u64) {
        assert!(!self.explode, "seeded harness panic");
        self.inner.drive(k, pid);
    }
    fn verify(&mut self, k: &mut Kernel, pid: u64) -> VerifyResult {
        self.inner.verify(k, pid)
    }
}

#[test]
fn worker_panics_become_classified_outcomes_not_poisoned_channels() {
    let cfg = |jobs| CampaignConfig {
        effective_experiments: 9,
        seed: 0xbad_cafe,
        jobs,
        ..CampaignConfig::default()
    };
    let serial = run_campaign(PanickyWorkload::new, &cfg(1));
    // The campaign completed despite panicking experiments, and the panics
    // are visible as classified resurrect failures.
    assert_eq!(serial.effective, 9);
    let contained = serial
        .records
        .iter()
        .filter(|r| match &r.outcome {
            Outcome::ResurrectFailure(why) => why.contains("harness panic contained"),
            _ => false,
        })
        .count();
    assert!(contained > 0, "expected contained harness panics");
    // And containment is scheduling-independent: the parallel run sees the
    // very same classified outcomes.
    let parallel = run_campaign(PanickyWorkload::new, &cfg(4));
    assert_eq!(serial, parallel);
}

/// Property test: any (jobs, experiments, seed) triple agrees with the
/// serial reference. Heavier than the pinned cases above, so it rides the
/// opt-in `heavy-tests` feature like the other property suites.
#[cfg(feature = "heavy-tests")]
#[test]
fn any_job_count_matches_serial_property() {
    let mut rng = SimRng::seed_from_u64(0x0eaf_1e55);
    for _ in 0..6 {
        let experiments = rng.gen_range(1usize..12);
        let jobs = rng.gen_range(2usize..9);
        let seed = rng.next_u64();
        let cfg = |jobs| CampaignConfig {
            effective_experiments: experiments,
            seed,
            jobs,
            ..CampaignConfig::default()
        };
        let serial = run_campaign(ViWorkload::new, &cfg(1));
        let parallel = run_campaign(ViWorkload::new, &cfg(jobs));
        assert_eq!(
            serial, parallel,
            "divergence at experiments={experiments} jobs={jobs} seed={seed:#x}"
        );
    }
}
