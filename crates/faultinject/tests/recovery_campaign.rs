//! Recovery-fault campaign acceptance: determinism, zero escaped panics,
//! and the supervisor ablation delta (whole-microreboot failures converted
//! into per-process degradations, clean restarts, or gen-2 escalations).

use ow_faultinject::{run_recovery_campaign, RecoveryCampaignConfig, RecoveryOutcome};

const EXPERIMENTS: usize = 12;

fn config() -> RecoveryCampaignConfig {
    RecoveryCampaignConfig {
        experiments: EXPERIMENTS,
        seed: 0x5ec0_4e4a,
        ..RecoveryCampaignConfig::default()
    }
}

#[test]
fn campaign_is_deterministic_for_a_fixed_seed() {
    let a = run_recovery_campaign(&config());
    let b = run_recovery_campaign(&config());
    assert_eq!(a.experiments, b.experiments);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.fault, rb.fault);
        assert_eq!(ra.with_supervisor, rb.with_supervisor);
        assert_eq!(ra.without_supervisor, rb.without_supervisor);
        assert_eq!(ra.with_rollback, rb.with_rollback);
    }
}

#[test]
fn no_injected_recovery_fault_propagates_a_panic_out_of_microreboot() {
    // The core acceptance property: every experiment — with or without the
    // supervisor — either returns Ok or a classified MicrorebootFailure.
    // A panic unwinding out of microreboot() is counted as an escape.
    let result = run_recovery_campaign(&config());
    assert_eq!(
        result.panic_escapes, 0,
        "panics escaped the microreboot boundary"
    );
    // Every paired run produced a classified outcome.
    assert_eq!(result.records.len(), EXPERIMENTS);
}

#[test]
fn supervisor_converts_whole_failures_into_graceful_degradation() {
    let result = run_recovery_campaign(&config());
    let on = &result.with_supervisor;
    let off = &result.without_supervisor;

    // The ablation delta: without the supervisor, recovery-time faults kill
    // whole microreboots; with it, they do not (or far less often).
    assert!(
        off.whole_failure > on.whole_failure,
        "supervisor must reduce whole-microreboot failures: on={} off={}",
        on.whole_failure,
        off.whole_failure
    );
    // And the conversions are visible: degradations, clean restarts, or
    // second-generation escalations actually occurred.
    assert!(
        on.degraded + on.clean_restart + on.gen2 > 0,
        "supervisor runs must show graceful-degradation outcomes"
    );
    // The supervisor side keeps the machine alive in every experiment for
    // this seeded plan.
    assert_eq!(on.survived(), EXPERIMENTS);
}

#[test]
fn per_record_supervisor_outcome_is_never_strictly_worse() {
    // Rank outcomes from best to worst; the supervised run must never land
    // in a worse class than the unsupervised run of the same experiment.
    fn rank(o: RecoveryOutcome) -> u8 {
        match o {
            RecoveryOutcome::RolledBack => 0,
            RecoveryOutcome::FullResurrection => 1,
            RecoveryOutcome::Degraded => 2,
            RecoveryOutcome::CleanRestart => 3,
            RecoveryOutcome::Gen2Restart => 4,
            RecoveryOutcome::PerProcessFailure => 5,
            RecoveryOutcome::WholeFailure => 6,
        }
    }
    let result = run_recovery_campaign(&config());
    for r in &result.records {
        assert!(
            rank(r.with_supervisor) <= rank(r.without_supervisor),
            "{:?}: supervised {:?} worse than unsupervised {:?}",
            r.fault,
            r.with_supervisor,
            r.without_supervisor
        );
        // The rollback arm may absorb the fault entirely (rung 0) but is
        // never worse than the plain supervised run.
        assert!(
            rank(r.with_rollback) <= rank(r.with_supervisor),
            "{:?}: rollback arm {:?} worse than supervised {:?}",
            r.fault,
            r.with_rollback,
            r.with_supervisor
        );
    }
}

#[test]
fn checkpoint_faults_fall_through_and_legacy_faults_roll_back() {
    // The rollback arm's dichotomy: faults aimed at the checkpoint itself
    // (stale epoch, torn slot, poisoned descriptor) must make rung 0 fall
    // through to the ordinary supervised recovery — landing exactly where
    // the supervised run without rollback lands — while recovery-side
    // faults are absorbed by the rollback before the engine ever runs.
    use ow_faultinject::RecoveryFaultKind;
    let result = run_recovery_campaign(&config());
    for r in &result.records {
        match r.fault {
            RecoveryFaultKind::StaleEpoch
            | RecoveryFaultKind::TornSlot
            | RecoveryFaultKind::PoisonedDesc => {
                assert_eq!(
                    r.with_rollback, r.with_supervisor,
                    "{:?}: corrupted checkpoint must fall through to the supervised outcome",
                    r.fault
                );
                assert_ne!(r.with_rollback, RecoveryOutcome::RolledBack);
            }
            _ => {
                assert_eq!(
                    r.with_rollback,
                    RecoveryOutcome::RolledBack,
                    "{:?}: rung 0 must absorb a recovery-side fault",
                    r.fault
                );
            }
        }
    }
}
