//! §3.1's argument for allowing the crash kernel to be a *different build*:
//! if the fault that killed the main kernel is deterministic (say, a
//! particular combination of system-call arguments), the resurrected
//! application will retry the call and re-trigger the same fault on an
//! identical crash kernel — while a different kernel version recovers.

use otherworld::core::{Otherworld, OtherworldConfig};
use otherworld::kernel::layout::oflags;
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{KernelConfig, PanicCause, PendingFault, SpawnSpec, PROG_STATE_VADDR};
use otherworld::simhw::machine::MachineConfig;

/// A program that keeps issuing the same (fatal-on-buggy-kernels) syscall.
struct Poison;

const PROGRESS: u64 = PROG_STATE_VADDR + 8;

impl Program for Poison {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        // The poisonous call: on a buggy kernel build the test harness has
        // armed a fault that fires inside this syscall.
        if let Ok(fd) = api.open("/poison", oflags::CREATE | oflags::WRITE) {
            let _ = api.close(fd);
            let n = api.mem_read_u64(PROGRESS).unwrap_or(0);
            let _ = api.mem_write_u64(PROGRESS, n + 1);
        }
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

/// The "kernel bug": version-1 builds crash inside the poisonous syscall.
const BUGGY_VERSION: u32 = 1;

fn arm_bug_if_buggy(ow: &mut Otherworld) {
    if ow.kernel().config.version == BUGGY_VERSION {
        ow.kernel_mut().pending_fault = Some(PendingFault {
            cause: PanicCause::Oops("deterministic syscall bug"),
            in_syscall: true,
        });
    }
}

/// Runs the scenario with the given crash-kernel build; returns how many
/// microreboots happened before the application made progress, or None if
/// it never did (livelock on the same buggy build).
fn run_with_crash_kernel(crash_version: u32, max_reboots: u32) -> Option<u32> {
    let mut ow = Otherworld::boot(
        MachineConfig {
            ram_frames: 4096,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: otherworld::simhw::CostModel::zero_io(),
        },
        KernelConfig {
            version: BUGGY_VERSION,
            ..KernelConfig::default()
        },
        OtherworldConfig {
            crash_kernel: KernelConfig {
                version: crash_version,
                ..KernelConfig::default()
            },
            ..OtherworldConfig::default()
        },
        {
            let mut r = ProgramRegistry::new();
            r.register("poison", |_a, _g| Box::new(Poison), |_a| Box::new(Poison));
            r
        },
    )
    .unwrap();
    ow.kernel_mut()
        .spawn(SpawnSpec::new("poison", Box::new(Poison)))
        .unwrap();

    for reboots in 0..=max_reboots {
        arm_bug_if_buggy(&mut ow);
        for _ in 0..4 {
            ow.kernel_mut().run_step();
        }
        if ow.is_panicked() {
            // On the same buggy build the retried syscall re-triggers the
            // fault; keep the configured crash kernel for every reboot.
            ow.microreboot_now().ok()?;
            continue;
        }
        // The kernel survived the syscall: check the app made progress.
        let pid = ow.kernel().procs[0].pid;
        let mut b = [0u8; 8];
        ow.kernel_mut().user_read(pid, PROGRESS, &mut b).ok()?;
        if u64::from_le_bytes(b) > 0 {
            return Some(reboots);
        }
    }
    None
}

#[test]
fn same_build_crash_kernel_retriggers_the_deterministic_fault() {
    // Crash kernel is the same buggy build: every retry re-panics.
    assert_eq!(run_with_crash_kernel(BUGGY_VERSION, 4), None);
}

#[test]
fn different_build_crash_kernel_recovers_in_one_microreboot() {
    assert_eq!(run_with_crash_kernel(BUGGY_VERSION + 1, 4), Some(1));
}
