//! The §6 robustness matrix: stalls, double faults and sabotaged panic
//! paths are fatal without the fixes and survivable with them — the
//! mechanism behind the 89% → 97% improvement.

use otherworld::core::{microreboot, MicrorebootFailure, OtherworldConfig};
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{
    Kernel, KernelConfig, PanicCause, PanicOutcome, RobustnessFixes, SpawnSpec,
};
use otherworld::simhw::machine::MachineConfig;

struct Idle;

impl Program for Idle {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot(fixes: RobustnessFixes) -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register("idle", |_a, _g| Box::new(Idle), |_a| Box::new(Idle));
    let config = KernelConfig {
        fixes,
        ..KernelConfig::default()
    };
    let mut k = Kernel::boot_cold(machine, config, registry).expect("boot");
    k.spawn(SpawnSpec::new("idle", Box::new(Idle))).unwrap();
    k
}

fn outcome(fixes: RobustnessFixes, cause: PanicCause) -> PanicOutcome {
    let mut k = boot(fixes);
    for _ in 0..3 {
        k.run_step();
    }
    k.do_panic(cause)
}

#[test]
fn stall_without_watchdog_hangs_the_system() {
    let out = outcome(RobustnessFixes::legacy(), PanicCause::Stall);
    assert!(matches!(out, PanicOutcome::SystemHalted(_)));
}

#[test]
fn stall_with_watchdog_microreboots() {
    let out = outcome(RobustnessFixes::default(), PanicCause::Stall);
    assert!(matches!(out, PanicOutcome::Handoff(_)));
}

#[test]
fn double_fault_without_fix_stops_the_system() {
    let out = outcome(RobustnessFixes::legacy(), PanicCause::DoubleFault);
    assert!(matches!(out, PanicOutcome::SystemHalted(_)));
}

#[test]
fn double_fault_with_fix_microreboots() {
    let out = outcome(RobustnessFixes::default(), PanicCause::DoubleFault);
    assert!(matches!(out, PanicOutcome::Handoff(_)));
}

#[test]
fn sabotaged_panic_path_needs_kdump_hardening() {
    let out = outcome(RobustnessFixes::legacy(), PanicCause::CorruptedPanicPath);
    assert!(matches!(out, PanicOutcome::SystemHalted(_)));
    let out = outcome(RobustnessFixes::default(), PanicCause::CorruptedPanicPath);
    assert!(matches!(out, PanicOutcome::Handoff(_)));
}

#[test]
fn corrupted_idt_gates_prevent_handoff_even_with_fixes() {
    let mut k = boot(RobustnessFixes::default());
    // Scribble over one IDT gate.
    k.machine
        .phys
        .corrupt_u64(otherworld::kernel::layout::IDT_GATES_OFF + 8 * 17, 0xff);
    let out = k.do_panic(PanicCause::Oops("idt"));
    assert!(matches!(out, PanicOutcome::SystemHalted(_)));
    let err = microreboot(k, &OtherworldConfig::default()).unwrap_err();
    assert!(matches!(err, MicrorebootFailure::SystemHalted(_)));
}

#[test]
fn corrupted_crash_image_header_prevents_handoff() {
    let mut k = boot(RobustnessFixes::default());
    let (base, _) = k.crash_region.expect("crash kernel loaded");
    // The image body is hardware-protected, but the paper's panic path
    // still validates the descriptor before jumping; corrupt the handoff
    // block's entry flag instead (it lives outside the protected image).
    let (mut h, _) = otherworld::kernel::layout::HandoffBlock::read(&k.machine.phys).unwrap();
    h.crash_entry_ok = 0;
    h.write(&mut k.machine.phys).unwrap();
    let out = k.do_panic(PanicCause::Oops("image"));
    assert!(matches!(out, PanicOutcome::SystemHalted(_)));
    let _ = base;
}

#[test]
fn crash_image_is_protected_from_wild_writes() {
    use otherworld::simhw::machine::WildWriteOutcome;
    let mut k = boot(RobustnessFixes::default());
    let (base, frames) = k.crash_region.expect("loaded");
    // Wild writes anywhere in the reservation bounce off the hardware
    // protection (§3.1).
    for i in 0..frames {
        let addr = (base + i) * 4096 + 128;
        assert_eq!(
            k.machine.wild_write(addr, 0xdead_beef, false),
            WildWriteOutcome::BlockedByHardware
        );
    }
    // So the panic path still succeeds afterwards.
    let out = k.do_panic(PanicCause::Oops("protected"));
    assert!(matches!(out, PanicOutcome::Handoff(_)));
}

#[test]
fn watchdog_fired_runs_the_stall_path() {
    let mut k = boot(RobustnessFixes::default());
    let out = k.watchdog_fired();
    assert!(matches!(out, PanicOutcome::Handoff(_)));
}
