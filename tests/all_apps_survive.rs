//! End-to-end: each of the five evaluation applications (§5) survives a
//! kernel crash with its data verified against the workload's remote log —
//! the success path of every Table 5 experiment.

use otherworld::apps::{make_workload, VerifyResult, Workload};
use otherworld::core::{Otherworld, OtherworldConfig};
use otherworld::kernel::{KernelConfig, PanicCause};
use otherworld::simhw::machine::MachineConfig;

fn survive(app: &str, batches: u32) {
    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("boot");

    let mut w = make_workload(app, 1234);
    let pid = w.setup(ow.kernel_mut());
    for _ in 0..batches {
        w.drive(ow.kernel_mut(), pid);
    }
    assert_eq!(
        w.verify(ow.kernel_mut(), pid),
        VerifyResult::Intact,
        "{app} pre-crash"
    );

    ow.kernel_mut().do_panic(PanicCause::Oops("all-apps test"));
    let report = ow.microreboot_now().expect("microreboot");
    let pr = report
        .proc_named(app)
        .unwrap_or_else(|| panic!("{app} resurrected"));
    assert!(pr.outcome.is_success(), "{app}: {:?}", pr.outcome);
    let new_pid = pr.new_pid.expect("pid");

    w.reconnect(ow.kernel_mut(), new_pid);
    for _ in 0..8 {
        ow.kernel_mut().run_step();
    }
    assert_eq!(
        w.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact,
        "{app} post-crash"
    );

    // The application keeps working on the new kernel.
    for _ in 0..10 {
        w.drive(ow.kernel_mut(), new_pid);
    }
    assert_eq!(
        w.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact,
        "{app} continued"
    );
}

#[test]
fn vi_survives() {
    survive("vi", 30);
}

#[test]
fn joe_survives() {
    survive("joe", 30);
}

#[test]
fn mysql_survives() {
    survive("mysqld", 30);
}

#[test]
fn apache_survives() {
    survive("httpd", 30);
}

#[test]
fn blcr_survives() {
    survive("blcr", 100);
}

#[test]
fn volano_survives() {
    survive("volano", 25);
}

#[test]
fn whole_zoo_survives_together() {
    // All applications running simultaneously through one microreboot —
    // the crash kernel resurrects every process on the list.
    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("boot");

    let mut workloads: Vec<Box<dyn Workload>> = ["vi", "mysqld", "httpd"]
        .iter()
        .map(|app| make_workload(app, 99))
        .collect();
    let mut pids = Vec::new();
    for w in &mut workloads {
        pids.push(w.setup(ow.kernel_mut()));
    }
    for _ in 0..15 {
        for (w, pid) in workloads.iter_mut().zip(&pids) {
            w.drive(ow.kernel_mut(), *pid);
        }
    }

    ow.kernel_mut().do_panic(PanicCause::Oops("zoo"));
    let report = ow.microreboot_now().expect("microreboot");
    assert_eq!(report.procs.len(), 3);
    assert!(report.all_succeeded(), "{report:?}");

    for w in &mut workloads {
        let name = w.name();
        let pid = ow
            .kernel()
            .procs
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.pid)
            .unwrap_or_else(|| panic!("{name} alive"));
        w.reconnect(ow.kernel_mut(), pid);
        for _ in 0..8 {
            ow.kernel_mut().run_step();
        }
        assert_eq!(
            w.verify(ow.kernel_mut(), pid),
            VerifyResult::Intact,
            "{name}"
        );
    }
}
