//! Layout-generation safety: a crash kernel that finds a handoff block
//! stamped by a different layout generation must refuse the microreboot
//! with a classified error — never misparse the dead kernel's structures.

use otherworld::core::{microreboot, MicrorebootFailure, OtherworldConfig};
use otherworld::kernel::layout::{HandoffBlock, LAYOUT_VERSION};
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Kernel, KernelConfig, PanicCause, SpawnSpec};
use otherworld::simhw::machine::MachineConfig;

struct Idle;

impl Program for Idle {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register("idle", |_a, _g| Box::new(Idle), |_a| Box::new(Idle));
    let mut k = Kernel::boot_cold(machine, KernelConfig::default(), registry).expect("boot");
    k.spawn(SpawnSpec::new("idle", Box::new(Idle))).unwrap();
    k
}

#[test]
fn handoff_carries_this_builds_layout_version() {
    let k = boot();
    let (h, _) = HandoffBlock::read(&k.machine.phys).expect("handoff readable");
    assert_eq!(h.layout_version, LAYOUT_VERSION);
}

#[test]
fn mismatched_layout_generation_is_refused_cleanly() {
    let mut k = boot();
    for _ in 0..3 {
        k.run_step();
    }

    // Simulate a dead kernel from a previous layout generation: rewrite the
    // handoff block with a bumped version stamp (everything else intact).
    let (mut h, _) = HandoffBlock::read(&k.machine.phys).expect("handoff readable");
    h.layout_version = LAYOUT_VERSION + 1;
    h.write(&mut k.machine.phys).expect("handoff writable");

    k.do_panic(PanicCause::Oops("generation test"));
    let err = microreboot(k, &OtherworldConfig::default())
        .expect_err("mismatched generation must not resurrect");
    match err {
        MicrorebootFailure::CrashBootFailed(why) => {
            assert!(
                why.contains("layout generation"),
                "refusal must be classified, got: {why}"
            );
            assert!(
                why.contains(&format!("v{}", LAYOUT_VERSION + 1)),
                "refusal must name the stored generation, got: {why}"
            );
        }
        other => panic!("expected CrashBootFailed, got {other:?}"),
    }
}

#[test]
fn matching_layout_generation_still_resurrects() {
    let mut k = boot();
    for _ in 0..3 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("control"));
    let (_k2, report) =
        microreboot(k, &OtherworldConfig::default()).expect("matching generation microreboots");
    assert!(report.generation >= 1);
}
