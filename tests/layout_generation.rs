//! Layout-generation safety: a crash kernel that finds a handoff block
//! stamped by a different layout generation must refuse the microreboot
//! with a classified error — never misparse the dead kernel's structures.

use otherworld::core::{microreboot, MicrorebootFailure, OtherworldConfig, SupervisorConfig};
use otherworld::kernel::layout::{HandoffBlock, LAYOUT_VERSION};
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Kernel, KernelConfig, PanicCause, SpawnSpec};
use otherworld::simhw::machine::MachineConfig;

struct Idle;

impl Program for Idle {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register("idle", |_a, _g| Box::new(Idle), |_a| Box::new(Idle));
    let mut k = Kernel::boot_cold(machine, KernelConfig::default(), registry).expect("boot");
    k.spawn(SpawnSpec::new("idle", Box::new(Idle))).unwrap();
    k
}

#[test]
fn handoff_carries_this_builds_layout_version() {
    let k = boot();
    let (h, _) = HandoffBlock::read(&k.machine.phys).expect("handoff readable");
    assert_eq!(h.layout_version, LAYOUT_VERSION);
}

/// Panics the kernel with a handoff block stamped by a different (future)
/// layout generation — as if the dead kernel were an incompatible build.
fn panic_with_bumped_layout() -> Kernel {
    let mut k = boot();
    for _ in 0..3 {
        k.run_step();
    }
    let (mut h, _) = HandoffBlock::read(&k.machine.phys).expect("handoff readable");
    h.layout_version = LAYOUT_VERSION + 1;
    h.write(&mut k.machine.phys).expect("handoff writable");
    k.do_panic(PanicCause::Oops("generation test"));
    k
}

#[test]
fn mismatched_layout_generation_is_refused_cleanly() {
    // Without the resurrection supervisor, a mismatched layout generation
    // fails the microreboot with a classified error.
    let k = panic_with_bumped_layout();
    let config = OtherworldConfig {
        supervisor: SupervisorConfig {
            enabled: false,
            ..SupervisorConfig::default()
        },
        ..OtherworldConfig::default()
    };
    let err = microreboot(k, &config).expect_err("mismatched generation must not resurrect");
    match err {
        MicrorebootFailure::CrashBootFailed(why) => {
            assert!(
                why.contains("layout generation"),
                "refusal must be classified, got: {why}"
            );
            assert!(
                why.contains(&format!("v{}", LAYOUT_VERSION + 1)),
                "refusal must name the stored generation, got: {why}"
            );
        }
        other => panic!("expected CrashBootFailed, got {other:?}"),
    }
}

#[test]
fn mismatched_layout_generation_escalates_to_restart_only() {
    // With the supervisor (the default), the refused first boot escalates
    // to a restart-only generation 2: the machine survives, but nothing may
    // be resurrected from the incompatible dead image — every process comes
    // back as a clean restart at best, never as a successful resurrection.
    let k = panic_with_bumped_layout();
    let (_k2, report) = microreboot(k, &OtherworldConfig::default())
        .expect("supervisor keeps the machine alive across the mismatch");
    assert!(report.supervisor.escalated, "must have escalated");
    assert!(
        report.supervisor.crash_boot_attempts >= 2,
        "first boot must have been refused"
    );
    assert!(
        report.procs.iter().all(|p| !p.outcome.is_success()),
        "no process may count as resurrected from a mismatched image: {:?}",
        report.procs
    );
}

#[test]
fn matching_layout_generation_still_resurrects() {
    let mut k = boot();
    for _ in 0..3 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("control"));
    let (_k2, report) =
        microreboot(k, &OtherworldConfig::default()).expect("matching generation microreboots");
    assert!(report.generation >= 1);
}
