//! The resurrection configuration file (§3.3): server systems choose which
//! processes to resurrect via a file that the crash kernel's startup script
//! consults — here a JSON policy stored *in the simulated filesystem*,
//! surviving the microreboot on disk and re-read by the crash kernel after
//! it re-mounts the same filesystem (§3.2).

use otherworld::core::{microreboot, OtherworldConfig, PolicySource, ResurrectionPolicy};
use otherworld::kernel::layout::oflags;
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Kernel, KernelConfig, PanicCause, SpawnSpec};
use otherworld::simhw::machine::MachineConfig;

struct Idle;

impl Program for Idle {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register("keepme", |_a, _g| Box::new(Idle), |_a| Box::new(Idle));
    registry.register("dropme", |_a, _g| Box::new(Idle), |_a| Box::new(Idle));
    Kernel::boot_cold(machine, KernelConfig::default(), registry).expect("boot")
}

fn write_policy(k: &mut Kernel, pid: u64, policy: &ResurrectionPolicy) {
    let fd = k
        .file_open(pid, "/etc/resurrect.conf", oflags::CREATE | oflags::WRITE)
        .unwrap();
    k.file_write(pid, fd, policy.to_json().as_bytes()).unwrap();
    k.file_close(pid, fd).unwrap();
}

#[test]
fn policy_file_selects_processes_across_the_microreboot() {
    let mut k = boot();
    let keep = k.spawn(SpawnSpec::new("keepme", Box::new(Idle))).unwrap();
    k.spawn(SpawnSpec::new("dropme", Box::new(Idle))).unwrap();
    write_policy(&mut k, keep, &ResurrectionPolicy::only(["keepme"]));

    k.do_panic(PanicCause::Oops("policy file"));
    let config = OtherworldConfig {
        policy: PolicySource::File("/etc/resurrect.conf".into()),
        ..OtherworldConfig::default()
    };
    let (k2, report) = microreboot(k, &config).unwrap();
    assert_eq!(report.procs.len(), 1);
    assert_eq!(report.procs[0].name, "keepme");
    assert!(report.procs[0].outcome.is_success());
    assert_eq!(k2.procs.len(), 1);
    assert_eq!(k2.procs[0].name, "keepme");
}

#[test]
fn missing_policy_file_falls_back_to_resurrect_all() {
    let mut k = boot();
    k.spawn(SpawnSpec::new("keepme", Box::new(Idle))).unwrap();
    k.spawn(SpawnSpec::new("dropme", Box::new(Idle))).unwrap();
    k.do_panic(PanicCause::Oops("no policy file"));
    let config = OtherworldConfig {
        policy: PolicySource::File("/etc/missing.conf".into()),
        ..OtherworldConfig::default()
    };
    let (_k2, report) = microreboot(k, &config).unwrap();
    assert_eq!(report.procs.len(), 2, "fallback resurrects everything");
}

#[test]
fn dirty_policy_file_written_just_before_the_crash_is_still_honored() {
    // The policy write sits in the page cache at crash time; the crash
    // kernel flushes dirty buffers of open files during resurrection, but
    // the policy read happens *before* that — so only a synced file
    // guarantees the policy. This documents the (realistic) semantics.
    let mut k = boot();
    let keep = k.spawn(SpawnSpec::new("keepme", Box::new(Idle))).unwrap();
    let fd = k
        .file_open(keep, "/etc/resurrect.conf", oflags::CREATE | oflags::WRITE)
        .unwrap();
    k.file_write(
        keep,
        fd,
        ResurrectionPolicy::only(["keepme"]).to_json().as_bytes(),
    )
    .unwrap();
    k.file_fsync(keep, fd).unwrap(); // the admin syncs the config
    k.do_panic(PanicCause::Oops("synced policy"));
    let config = OtherworldConfig {
        policy: PolicySource::File("/etc/resurrect.conf".into()),
        ..OtherworldConfig::default()
    };
    let (_k2, report) = microreboot(k, &config).unwrap();
    assert_eq!(report.procs.len(), 1);
    assert_eq!(report.procs[0].name, "keepme");
}
