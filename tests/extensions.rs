//! The §7 future-work extensions, implemented and tested: TCP/UDP socket
//! resurrection, pipe resurrection under the §3.3 semaphore-consistency
//! rule, the fast crash-kernel boot, §4 descriptor checksums, and hot
//! kernel updates.

use otherworld::core::{microreboot, Otherworld, OtherworldConfig, ProcOutcome};
use otherworld::kernel::layout::Record;
use otherworld::kernel::layout::{sockproto, SockDesc};
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Errno, Kernel, KernelConfig, PanicCause, PendingFault, SpawnSpec};
use otherworld::simhw::machine::MachineConfig;

/// A server that echoes socket messages, with no crash procedure: it can
/// only survive transparently if sockets themselves are resurrected.
struct Echo;

const SID_CELL: u64 = otherworld::kernel::PROG_STATE_VADDR + 8;
const COUNT_CELL: u64 = otherworld::kernel::PROG_STATE_VADDR + 16;

impl Program for Echo {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        let sid = match api.mem_read_u64(SID_CELL) {
            Ok(u64::MAX) | Err(_) => match api.socket() {
                Ok(s) => {
                    let _ = api.mem_write_u64(SID_CELL, s as u64);
                    s
                }
                Err(_) => return StepResult::Running,
            },
            Ok(s) => s as u32,
        };
        let mut buf = [0u8; 64];
        match api.sock_recv(sid, &mut buf) {
            Ok(n) => {
                let _ = api.sock_send(sid, &buf[..n as usize]);
                let c = api.mem_read_u64(COUNT_CELL).unwrap_or(0);
                let _ = api.mem_write_u64(COUNT_CELL, c + 1);
                StepResult::Running
            }
            Err(Errno::WouldBlock) | Err(Errno::Restart) => StepResult::Running,
            Err(_) => {
                let _ = api.mem_write_u64(SID_CELL, u64::MAX);
                StepResult::Running
            }
        }
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(
        "echo",
        |api, _args| {
            let _ = api.mem_write_u64(SID_CELL, u64::MAX);
            let _ = api.mem_write_u64(COUNT_CELL, 0);
            Box::new(Echo)
        },
        |_api| Box::new(Echo),
    );
    r
}

fn boot_with(config: KernelConfig) -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    Kernel::boot_cold(machine, config, registry()).expect("boot")
}

fn boot() -> Kernel {
    boot_with(KernelConfig::default())
}

#[test]
fn tcp_socket_resurrection_is_transparent() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    for _ in 0..3 {
        k.run_step();
    }
    let sid = 0u32;
    k.sock_deliver(pid, sid, b"ping-1").unwrap();
    for _ in 0..4 {
        k.run_step();
    }
    // One reply sits unacknowledged in the socket buffer.
    k.do_panic(PanicCause::Oops("socket test"));
    let config = OtherworldConfig {
        resurrect_sockets: true,
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = microreboot(k, &config).unwrap();
    let pr = &report.procs[0];
    assert_eq!(pr.outcome, ProcOutcome::ContinuedTransparently, "{pr:?}");
    assert_eq!(pr.failed_resources, 0);
    let new_pid = pr.new_pid.unwrap();

    // The unacked payload is queued for retransmission to the peer.
    let retrans = k2.sock_drain(new_pid, sid).unwrap();
    assert_eq!(retrans, vec![b"ping-1".to_vec()]);

    // The connection parameters survived: same sid keeps working.
    k2.sock_deliver(new_pid, sid, b"ping-2").unwrap();
    for _ in 0..4 {
        k2.run_step();
    }
    let replies = k2.sock_drain(new_pid, sid).unwrap();
    assert_eq!(replies, vec![b"ping-2".to_vec()]);
    // And the sequence number advanced monotonically across the crash.
    let desc_addr = k2.read_desc(new_pid).unwrap().sock_head;
    let (d, _) = SockDesc::read(&k2.machine.phys, desc_addr).unwrap();
    assert_eq!(d.seq, 12, "6 bytes before + 6 after the microreboot");
}

#[test]
fn udp_socket_resurrection_discards_payload() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    let sid = k.sock_open_proto(pid, sockproto::UDP).unwrap();
    k.sock_send(pid, sid, b"datagram").unwrap();
    k.do_panic(PanicCause::Oops("udp"));
    let config = OtherworldConfig {
        resurrect_sockets: true,
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = microreboot(k, &config).unwrap();
    let new_pid = report.procs[0].new_pid.unwrap();
    // UDP gives no delivery guarantee: it is safe to discard payload and
    // restore only the connection parameters (§3.3).
    let out = k2.sock_drain(new_pid, sid).unwrap();
    assert!(out.is_empty());
    let desc_addr = k2.read_desc(new_pid).unwrap().sock_head;
    let (d, _) = SockDesc::read(&k2.machine.phys, desc_addr).unwrap();
    assert_eq!(d.proto, sockproto::UDP);
    assert_eq!(d.outbuf_len, 0);
    assert_eq!(d.seq, 8, "connection parameters survive");
}

#[test]
fn without_the_extension_sockets_still_fail_resurrection() {
    let mut k = boot();
    k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    for _ in 0..3 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("prototype semantics"));
    let (_k2, report) = microreboot(k, &OtherworldConfig::default()).unwrap();
    assert_eq!(report.procs[0].outcome, ProcOutcome::FailedUnresurrectable);
}

#[test]
fn consistent_pipe_survives_with_contents() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    let pipe = k.pipe_create().unwrap();
    k.pipe_attach(pid, pipe).unwrap();
    k.pipe_write(pipe, b"buffered bytes").unwrap();
    k.do_panic(PanicCause::Oops("pipe"));
    let config = OtherworldConfig {
        resurrect_pipes: true,
        resurrect_sockets: true,
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = microreboot(k, &config).unwrap();
    assert_eq!(report.procs[0].outcome, ProcOutcome::ContinuedTransparently);
    assert_eq!(report.procs[0].failed_resources, 0);
    // The ring buffer contents crossed the microreboot.
    let mut buf = vec![0u8; 14];
    assert_eq!(k2.pipe_read(pipe, &mut buf).unwrap(), 14);
    assert_eq!(&buf, b"buffered bytes");
}

#[test]
fn locked_pipe_fails_resurrection_per_the_semaphore_rule() {
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    let pipe = k.pipe_create().unwrap();
    k.pipe_attach(pid, pipe).unwrap();
    k.pipe_write(pipe, b"pre").unwrap();
    // The kernel dies while a writer holds the pipe semaphore (§3.3's
    // inconsistent case).
    k.pending_fault = Some(PendingFault {
        cause: PanicCause::Oops("mid pipe op"),
        in_syscall: true,
    });
    let _ = k.pipe_write(pipe, b"never");
    assert!(k.panicked.is_some());
    let config = OtherworldConfig {
        resurrect_pipes: true,
        resurrect_sockets: true,
        ..OtherworldConfig::default()
    };
    let (_k2, report) = microreboot(k, &config).unwrap();
    // The process survives only if it has a crash procedure; echo has none,
    // so the PIPES failure makes resurrection fail (Table 1 bottom-right).
    assert_eq!(report.procs[0].outcome, ProcOutcome::FailedUnresurrectable);
    assert_ne!(
        report.procs[0].failed_resources & otherworld::kernel::layout::resmask::PIPES,
        0
    );
}

#[test]
fn fast_crash_boot_shrinks_the_interruption() {
    let timed = |fast: bool| -> f64 {
        let config = KernelConfig {
            fast_crash_boot: fast,
            ..KernelConfig::default()
        };
        let mut k = boot_with(config.clone());
        k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
        k.do_panic(PanicCause::Oops("fast boot"));
        let ow_config = OtherworldConfig {
            crash_kernel: config,
            resurrect_sockets: true,
            ..OtherworldConfig::default()
        };
        let (_k2, report) = microreboot(k, &ow_config).unwrap();
        report.crash_boot_seconds
    };
    let slow = timed(false);
    let fast = timed(true);
    assert!(
        fast < slow / 1.5,
        "fast boot {fast}s should be well under full boot {slow}s"
    );
}

#[test]
fn checksums_catch_corruption_plain_validation_misses() {
    // A flipped saved register passes every plausibility check...
    let mut k = boot();
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    let addr = k.proc(pid).unwrap().desc_addr;
    k.machine.phys.corrupt_u64(
        addr + otherworld::kernel::layout::proc_off::SAVED_REGS,
        0xff,
    );
    assert!(
        otherworld::kernel::layout::ProcDesc::read(&k.machine.phys, addr).is_ok(),
        "plain validation cannot see a flipped register"
    );

    // ...but not the §4 checksum.
    let mut k = boot_with(KernelConfig {
        desc_checksums: true,
        ..KernelConfig::default()
    });
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    for _ in 0..3 {
        k.run_step();
    }
    let addr = k.proc(pid).unwrap().desc_addr;
    assert!(otherworld::kernel::layout::ProcDesc::read(&k.machine.phys, addr).is_ok());
    k.machine.phys.corrupt_u64(
        addr + otherworld::kernel::layout::proc_off::SAVED_REGS,
        0xff,
    );
    assert!(
        otherworld::kernel::layout::ProcDesc::read(&k.machine.phys, addr).is_err(),
        "the checksum must catch it"
    );
}

#[test]
fn checksummed_descriptors_survive_normal_operation() {
    // The checksum is recomputed through every update path (spawn, syscall
    // markers, resurrection) — a full crash/resurrect cycle must work.
    let config = KernelConfig {
        desc_checksums: true,
        ..KernelConfig::default()
    };
    let mut k = boot_with(config.clone());
    let pid = k.spawn(SpawnSpec::new("echo", Box::new(Echo))).unwrap();
    k.sock_deliver(pid, 0, b"x").ok();
    for _ in 0..6 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("checksums"));
    let ow_config = OtherworldConfig {
        crash_kernel: config,
        resurrect_sockets: true,
        ..OtherworldConfig::default()
    };
    let (mut k2, report) = microreboot(k, &ow_config).unwrap();
    assert!(report.all_succeeded(), "{:?}", report.procs);
    for _ in 0..6 {
        k2.run_step();
    }
    assert!(k2.panicked.is_none());
}

#[test]
fn hot_kernel_update_preserves_applications() {
    let mut ow = Otherworld::boot(
        MachineConfig {
            ram_frames: 4096,
            cpus: 2,
            tlb_entries: 64,
            tlb_tagged: true,
            cost: otherworld::simhw::CostModel::zero_io(),
        },
        KernelConfig {
            version: 1,
            ..KernelConfig::default()
        },
        OtherworldConfig {
            resurrect_sockets: true,
            ..OtherworldConfig::default()
        },
        registry(),
    )
    .unwrap();
    let pid = ow
        .kernel_mut()
        .spawn(SpawnSpec::new("echo", Box::new(Echo)))
        .unwrap();
    for _ in 0..3 {
        ow.kernel_mut().run_step();
    }
    ow.kernel_mut().sock_deliver(pid, 0, b"before").unwrap();
    for _ in 0..3 {
        ow.kernel_mut().run_step();
    }
    assert_eq!(ow.kernel().config.version, 1);

    // Update to kernel version 2 without stopping the echo server.
    let report = ow
        .hot_update(KernelConfig {
            version: 2,
            ..KernelConfig::default()
        })
        .unwrap();
    assert!(report.all_succeeded());
    assert_eq!(ow.kernel().config.version, 2);
    assert_eq!(ow.kernel().generation, 1);

    // The server keeps echoing on the new kernel.
    let new_pid = ow.kernel().procs[0].pid;
    let _ = ow.kernel_mut().sock_drain(new_pid, 0);
    ow.kernel_mut().sock_deliver(new_pid, 0, b"after").unwrap();
    for _ in 0..4 {
        ow.kernel_mut().run_step();
    }
    let replies = ow.kernel_mut().sock_drain(new_pid, 0).unwrap();
    assert_eq!(replies, vec![b"after".to_vec()]);
}
