//! The central resurrection invariant, property-tested: absent corruption,
//! a resurrected process's user address space is **byte-identical** to the
//! moment of the crash — whatever mix of written, untouched and swapped-out
//! pages it contains, and under either page-materialization strategy.
//! Driven by the vendored [`SimRng`] instead of proptest so it runs fully
//! offline.
//!
//! Gated behind the off-by-default `heavy-tests` feature: these are the
//! slow, many-cases sweeps. The tier-1 offline gate (`ci.sh`) builds them
//! with `--all-features` clippy so they stay warning-clean, but only runs
//! them when asked (`cargo test --features heavy-tests`).
#![cfg(feature = "heavy-tests")]

use otherworld::core::{microreboot, OtherworldConfig, ResurrectionStrategy};
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Kernel, KernelConfig, PanicCause, SpawnSpec, PROG_STATE_VADDR};
use otherworld::simhw::machine::MachineConfig;
use otherworld::simhw::SimRng;

struct Blob;

impl Program for Blob {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register("blob", |_a, _g| Box::new(Blob), |_a| Box::new(Blob));
    Kernel::boot_cold(machine, KernelConfig::default(), registry).expect("boot")
}

#[test]
fn address_space_survives_byte_identically() {
    let mut rng = SimRng::seed_from_u64(0x1de2_717e);
    for case in 0..24 {
        let nwrites = rng.gen_range(1usize..40);
        let writes: Vec<(u64, u8, u64)> = (0..nwrites)
            .map(|_| {
                // (page index within a 48-page window, payload byte, offset)
                (
                    rng.gen_range(0u64..48),
                    rng.next_u64() as u8,
                    rng.gen_range(0u64..4000),
                )
            })
            .collect();
        let swap_outs = rng.gen_range(0usize..12);
        let map_strategy = rng.gen_bool(0.5);

        let mut k = boot();
        let mut spec = SpawnSpec::new("blob", Box::new(Blob));
        spec.heap_pages = 64;
        let pid = k.spawn(spec).unwrap();

        // Scatter writes over the heap window.
        for (page, byte, off) in &writes {
            let vaddr = PROG_STATE_VADDR + page * 4096 + off;
            k.user_write(pid, vaddr, &[*byte, byte.wrapping_add(1)])
                .unwrap();
        }
        // Swap out a prefix of the present pages.
        let _ = k.swap_out_pages(pid, swap_outs);

        // Snapshot the full heap window through the kernel's user-read path.
        let mut before = vec![0u8; 48 * 4096];
        k.user_read(pid, PROG_STATE_VADDR, &mut before).unwrap();
        // Re-evict after the snapshot faulted everything back in.
        let _ = k.swap_out_pages(pid, swap_outs);

        k.do_panic(PanicCause::Oops("prop"));
        let config = OtherworldConfig {
            strategy: if map_strategy {
                ResurrectionStrategy::MapPages
            } else {
                ResurrectionStrategy::CopyPages
            },
            ..OtherworldConfig::default()
        };
        let (mut k2, report) = microreboot(k, &config).unwrap();
        assert!(report.all_succeeded(), "case {case}: {:?}", report.procs);
        let new_pid = report.procs[0].new_pid.unwrap();

        let mut after = vec![0u8; 48 * 4096];
        k2.user_read(new_pid, PROG_STATE_VADDR, &mut after).unwrap();
        assert_eq!(before, after, "case {case}");
    }
}
