//! The central resurrection invariant, property-tested: absent corruption,
//! a resurrected process's user address space is **byte-identical** to the
//! moment of the crash — whatever mix of written, untouched and swapped-out
//! pages it contains, and under either page-materialization strategy.
//!
//! Gated behind the off-by-default `heavy-tests` feature: proptest is not
//! vendored, so running these requires network access to fetch it (add
//! `proptest = "1"` back under `[dev-dependencies]` and enable the
//! feature). The tier-1 offline gate (`ci.sh`) builds with the feature
//! off, which compiles this file down to nothing.
#![cfg(feature = "heavy-tests")]

use otherworld::core::{microreboot, OtherworldConfig, ResurrectionStrategy};
use otherworld::kernel::program::{Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Kernel, KernelConfig, PanicCause, SpawnSpec, PROG_STATE_VADDR};
use otherworld::simhw::machine::MachineConfig;
use proptest::prelude::*;

struct Blob;

impl Program for Blob {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }
    fn save_state(&mut self, _api: &mut dyn UserApi) {}
}

fn boot() -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register("blob", |_a, _g| Box::new(Blob), |_a| Box::new(Blob));
    Kernel::boot_cold(machine, KernelConfig::default(), registry).expect("boot")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn address_space_survives_byte_identically(
        writes in prop::collection::vec(
            // (page index within a 48-page window, payload byte, offset)
            (0u64..48, any::<u8>(), 0u64..4000),
            1..40
        ),
        swap_outs in 0usize..12,
        map_strategy in any::<bool>(),
    ) {
        let mut k = boot();
        let mut spec = SpawnSpec::new("blob", Box::new(Blob));
        spec.heap_pages = 64;
        let pid = k.spawn(spec).unwrap();

        // Scatter writes over the heap window.
        for (page, byte, off) in &writes {
            let vaddr = PROG_STATE_VADDR + page * 4096 + off;
            k.user_write(pid, vaddr, &[*byte, byte.wrapping_add(1)]).unwrap();
        }
        // Swap out a prefix of the present pages.
        let _ = k.swap_out_pages(pid, swap_outs);

        // Snapshot the full heap window through the kernel's user-read path.
        let mut before = vec![0u8; 48 * 4096];
        k.user_read(pid, PROG_STATE_VADDR, &mut before).unwrap();
        // Re-evict after the snapshot faulted everything back in.
        let _ = k.swap_out_pages(pid, swap_outs);

        k.do_panic(PanicCause::Oops("prop"));
        let config = OtherworldConfig {
            strategy: if map_strategy {
                ResurrectionStrategy::MapPages
            } else {
                ResurrectionStrategy::CopyPages
            },
            ..OtherworldConfig::default()
        };
        let (mut k2, report) = microreboot(k, &config).unwrap();
        prop_assert!(report.all_succeeded(), "{:?}", report.procs);
        let new_pid = report.procs[0].new_pid.unwrap();

        let mut after = vec![0u8; 48 * 4096];
        k2.user_read(new_pid, PROG_STATE_VADDR, &mut after).unwrap();
        prop_assert_eq!(before, after);
    }
}
