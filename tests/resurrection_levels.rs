//! Table 1 of the paper: the interaction matrix between the crash kernel
//! and the application being resurrected.
//!
//! |                       | Crash procedure defined      | No crash procedure |
//! |-----------------------|------------------------------|--------------------|
//! | All resources         | procedure called; continue   | continue execution |
//! | Some resources failed | procedure called; can restart| resurrection fails |

use otherworld::core::{microreboot, OtherworldConfig, ProcOutcome};
use otherworld::kernel::program::{CrashAction, Program, ProgramRegistry, StepResult, UserApi};
use otherworld::kernel::{Kernel, KernelConfig, PanicCause, SpawnSpec};
use otherworld::simhw::machine::MachineConfig;

/// A program whose crash procedure records the failure bitmask it receives
/// and follows a configurable policy.
struct Probe {
    action: &'static str,
}

/// User-memory cell where the crash procedure stores the bitmask it saw.
const SEEN_MASK: u64 = otherworld::kernel::PROG_STATE_VADDR + 8;

impl Program for Probe {
    fn step(&mut self, api: &mut dyn UserApi) -> StepResult {
        api.compute(1);
        StepResult::Running
    }

    fn save_state(&mut self, _api: &mut dyn UserApi) {}

    fn crash_procedure(&mut self, api: &mut dyn UserApi, failed: u32) -> CrashAction {
        api.mem_write_u64(SEEN_MASK, 0xC0DE_0000 | failed as u64)
            .expect("record mask");
        match self.action {
            "continue" => CrashAction::Continue,
            "restart" => CrashAction::SaveAndRestart(vec![]),
            _ => CrashAction::GiveUp,
        }
    }
}

fn boot(action: &'static str) -> Kernel {
    let machine = otherworld::kernel::standard_machine(MachineConfig {
        ram_frames: 4096,
        cpus: 2,
        tlb_entries: 64,
        tlb_tagged: true,
        cost: otherworld::simhw::CostModel::zero_io(),
    });
    let mut registry = ProgramRegistry::new();
    registry.register(
        "probe",
        move |_api, _args| Box::new(Probe { action }),
        move |_api| Box::new(Probe { action }),
    );
    Kernel::boot_cold(machine, KernelConfig::default(), registry).expect("boot")
}

fn spawn_probe(k: &mut Kernel, crash_proc: bool, use_socket: bool) -> u64 {
    let pid = k
        .spawn(SpawnSpec::new(
            "probe",
            Box::new(Probe { action: "continue" }),
        ))
        .unwrap();
    if crash_proc {
        k.register_crash_proc(pid).unwrap();
    }
    if use_socket {
        // Sockets are not resurrectable: this process will have a failed
        // resource after the microreboot.
        k.sock_open(pid).unwrap();
    }
    pid
}

fn crash_and_reboot(mut k: Kernel) -> (Kernel, otherworld::core::MicrorebootReport) {
    for _ in 0..3 {
        k.run_step();
    }
    k.do_panic(PanicCause::Oops("table 1"));
    microreboot(k, &OtherworldConfig::default()).expect("microreboot")
}

#[test]
fn all_resources_no_crash_proc_continues_transparently() {
    let mut k = boot("continue");
    spawn_probe(&mut k, false, false);
    let (_k2, report) = crash_and_reboot(k);
    assert_eq!(report.procs[0].outcome, ProcOutcome::ContinuedTransparently);
    assert_eq!(report.procs[0].failed_resources, 0);
}

#[test]
fn all_resources_with_crash_proc_calls_it_and_continues() {
    let mut k = boot("continue");
    spawn_probe(&mut k, true, false);
    let (mut k2, report) = crash_and_reboot(k);
    assert_eq!(
        report.procs[0].outcome,
        ProcOutcome::ContinuedAfterCrashProc
    );
    // The crash procedure really ran, with an empty failure bitmask.
    let new_pid = report.procs[0].new_pid.unwrap();
    let mut buf = [0u8; 8];
    k2.user_read(new_pid, SEEN_MASK, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 0xC0DE_0000);
}

#[test]
fn failed_resources_no_crash_proc_fails_resurrection() {
    let mut k = boot("continue");
    spawn_probe(&mut k, false, true);
    let (k2, report) = crash_and_reboot(k);
    assert_eq!(report.procs[0].outcome, ProcOutcome::FailedUnresurrectable);
    assert!(k2.procs.is_empty(), "the process must not survive");
}

#[test]
fn failed_resources_with_crash_proc_sees_the_bitmask() {
    let mut k = boot("continue");
    spawn_probe(&mut k, true, true);
    let (mut k2, report) = crash_and_reboot(k);
    assert_eq!(
        report.procs[0].outcome,
        ProcOutcome::ContinuedAfterCrashProc
    );
    assert_eq!(
        report.procs[0].failed_resources,
        otherworld::kernel::layout::resmask::SOCKETS
    );
    let new_pid = report.procs[0].new_pid.unwrap();
    let mut buf = [0u8; 8];
    k2.user_read(new_pid, SEEN_MASK, &mut buf).unwrap();
    assert_eq!(
        u64::from_le_bytes(buf),
        0xC0DE_0000 | otherworld::kernel::layout::resmask::SOCKETS as u64
    );
}

#[test]
fn crash_proc_can_save_and_restart() {
    let mut k = boot("restart");
    spawn_probe(&mut k, true, true);
    let (k2, report) = crash_and_reboot(k);
    assert_eq!(report.procs[0].outcome, ProcOutcome::SavedAndRestarted);
    assert_eq!(k2.procs.len(), 1, "a fresh instance must be running");
}

#[test]
fn crash_proc_can_give_up() {
    let mut k = boot("giveup");
    spawn_probe(&mut k, true, true);
    let (k2, report) = crash_and_reboot(k);
    assert_eq!(report.procs[0].outcome, ProcOutcome::GaveUp);
    assert!(k2.procs.is_empty());
}
