//! # Otherworld — giving applications a chance to survive OS kernel crashes
//!
//! A comprehensive reproduction of Depoutovitch & Stumm's EuroSys 2010
//! paper on a simulated-machine substrate, organized as a workspace:
//!
//! * [`simhw`] — simulated hardware: physical memory, two-level page tables
//!   resident in that memory, an MMU with a TLB cost model, CPUs with NMI
//!   context-save areas, latency-modelled block devices, a watchdog.
//! * [`kernel`] — a miniature monolithic kernel whose processes, VMAs,
//!   open files, page cache, swap areas, terminals, signals and shared
//!   memory are all serialized into the simulated physical memory; plus the
//!   KDump-style crash-kernel reservation and the panic/handoff path.
//! * [`core`] — Otherworld itself: the crash-kernel bootstrap, validated
//!   raw-memory readers over the dead kernel, the resurrection engine,
//!   crash procedures (Table 1 semantics) and morphing back into a main
//!   kernel.
//! * [`apps`] — the evaluation applications: vi, JOE, a MySQL/MEMORY-PSE
//!   analog, an Apache/PHP session server, BLCR checkpointing and a
//!   VolanoMark chat benchmark, each with a driven, shadow-verified
//!   workload.
//! * [`faultinject`] — the Rio/Nooks-style fault injector and the Table 5
//!   campaign runner.
//!
//! ## Quickstart
//!
//! ```
//! use otherworld::core::{Otherworld, OtherworldConfig};
//! use otherworld::kernel::{KernelConfig, PanicCause};
//! use otherworld::simhw::machine::MachineConfig;
//! use otherworld::apps::{vi::ViWorkload, Workload, VerifyResult};
//!
//! // Boot a machine with Otherworld installed and the stock app registry.
//! let mut ow = Otherworld::boot(
//!     MachineConfig::default(),
//!     KernelConfig::default(),
//!     OtherworldConfig::default(),
//!     otherworld::apps::full_registry(),
//! )
//! .unwrap();
//!
//! // Run vi under a typing user.
//! let mut workload = ViWorkload::new(42);
//! let pid = workload.setup(ow.kernel_mut());
//! for _ in 0..10 {
//!     workload.drive(ow.kernel_mut(), pid);
//! }
//!
//! // The kernel hits a critical error...
//! ow.kernel_mut().do_panic(PanicCause::Oops("use-after-free in a driver"));
//!
//! // ...and Otherworld microreboots it without losing the editor.
//! let report = ow.microreboot_now().unwrap();
//! assert!(report.all_succeeded());
//! let pid = ow.kernel().procs[0].pid;
//! workload.reconnect(ow.kernel_mut(), pid);
//! assert_eq!(workload.verify(ow.kernel_mut(), pid), VerifyResult::Intact);
//! ```

#![forbid(unsafe_code)]

pub use ow_apps as apps;
pub use ow_core as core;
pub use ow_faultinject as faultinject;
pub use ow_kernel as kernel;
pub use ow_simhw as simhw;
