//! The web-session story of §5.3: PHP keeps session data (shopping carts,
//! credentials) in shared memory because persisting it costs ≥25%
//! throughput. The crash procedure added to the PHP module saves the
//! session hash table to a file on a kernel crash and Apache restarts from
//! it — no PHP application changes required.
//!
//! Run with: `cargo run --example web_sessions`

use otherworld::apps::webserv::{self, WebServWorkload};
use otherworld::apps::{VerifyResult, Workload};
use otherworld::core::{Otherworld, OtherworldConfig, ProcOutcome};
use otherworld::kernel::{KernelConfig, PanicCause};
use otherworld::simhw::machine::MachineConfig;

fn main() {
    println!("== Web sessions across a kernel crash (§5.3) ==\n");

    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("boot");

    let mut clients = WebServWorkload::new(9);
    let pid = clients.setup(ow.kernel_mut());
    for _ in 0..60 {
        clients.drive(ow.kernel_mut(), pid);
    }
    let sessions = webserv::read_sessions(ow.kernel_mut(), pid).expect("sessions");
    println!(
        "httpd holding {} live sessions in shared memory (no disk persistence)",
        sessions.len()
    );

    println!("\n*** kernel panic under load ***");
    ow.kernel_mut()
        .do_panic(PanicCause::Oops("interrupt storm"));

    let report = ow.microreboot_now().expect("microreboot");
    let pr = report.proc_named("httpd").expect("resurrected");
    assert_eq!(pr.outcome, ProcOutcome::SavedAndRestarted);
    println!(
        "PHP-module crash procedure saved the session table to {} and Apache restarted",
        webserv::SESSION_FILE
    );

    let new_pid = pr.new_pid.expect("restarted pid");
    clients.reconnect(ow.kernel_mut(), new_pid);
    for _ in 0..8 {
        ow.kernel_mut().run_step();
    }
    assert_eq!(
        clients.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );
    println!("every shopping cart and credential verified against the client log");

    for _ in 0..20 {
        clients.drive(ow.kernel_mut(), new_pid);
    }
    assert_eq!(
        clients.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );
    println!("requests flowing again — users never logged out");
}
