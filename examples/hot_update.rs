//! §7's closing vision: because Otherworld can microreboot a kernel without
//! terminating the applications above it, it can **hot-update** a kernel
//! running mission-critical software — the crash kernel is simply a *newer
//! build*, and a planned microreboot swaps it in. Combined with the §7
//! extensions (socket resurrection, fast crash boot) the service barely
//! notices.
//!
//! Run with: `cargo run --example hot_update`

use otherworld::apps::minidb::{self, MiniDbWorkload};
use otherworld::apps::{VerifyResult, Workload};
use otherworld::core::{Otherworld, OtherworldConfig};
use otherworld::kernel::KernelConfig;
use otherworld::simhw::machine::MachineConfig;

fn main() {
    println!("== Hot kernel update under a live database (§7) ==\n");

    let v1 = KernelConfig {
        version: 1,
        ..KernelConfig::default()
    };
    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        v1,
        OtherworldConfig {
            resurrect_sockets: true, // §7 extension: clients stay connected
            ..OtherworldConfig::default()
        },
        otherworld::apps::full_registry(),
    )
    .expect("boot");
    println!("running kernel v{}", ow.kernel().config.version);

    let mut client = MiniDbWorkload::new(33);
    let pid = client.setup(ow.kernel_mut());
    for _ in 0..40 {
        client.drive(ow.kernel_mut(), pid);
    }
    let rows: usize = minidb::read_db(ow.kernel_mut(), pid)
        .expect("tables")
        .values()
        .map(Vec::len)
        .sum();
    println!("mysqld serving transactions: {rows} rows in memory");

    // Ship kernel v2 with the fast-boot optimization enabled.
    println!("\n*** installing kernel v2 (fast crash boot) and microrebooting ***");
    let v2 = KernelConfig {
        version: 2,
        fast_crash_boot: true,
        ..KernelConfig::default()
    };
    let (boot_s, total_s) = {
        let report = ow.hot_update(v2).expect("hot update");
        assert!(report.all_succeeded());
        (report.crash_boot_seconds, report.total_seconds)
    };
    println!(
        "now running kernel v{} (generation {}) — kernel swap took {total_s:.1}s \
         ({boot_s:.1}s of it booting the new kernel)",
        ow.kernel().config.version,
        ow.kernel().generation,
    );

    // The database survived the update.
    let new_pid = ow.kernel().procs[0].pid;
    client.reconnect(ow.kernel_mut(), new_pid);
    for _ in 0..8 {
        ow.kernel_mut().run_step();
    }
    assert_eq!(
        client.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );
    for _ in 0..20 {
        client.drive(ow.kernel_mut(), new_pid);
    }
    assert_eq!(
        client.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );
    println!("database verified intact and serving new transactions on the updated kernel");

    // A second update goes back the other way — rejuvenation on a schedule.
    let v3 = KernelConfig {
        version: 3,
        fast_crash_boot: true,
        ..KernelConfig::default()
    };
    let report = ow.hot_update(v3).expect("second update");
    assert!(report.all_succeeded());
    println!(
        "\nscheduled rejuvenation: kernel v{} (generation {}) with zero data loss",
        ow.kernel().config.version,
        ow.kernel().generation
    );
}
