//! Quickstart: boot a machine with Otherworld, crash the kernel under a
//! running editor, and watch the editor continue as if nothing happened.
//!
//! Run with: `cargo run --example quickstart`

use otherworld::apps::{vi, vi::ViWorkload, VerifyResult, Workload};
use otherworld::core::{Otherworld, OtherworldConfig};
use otherworld::kernel::{KernelConfig, PanicCause};
use otherworld::simhw::machine::MachineConfig;

fn main() {
    println!("== Otherworld quickstart ==\n");

    // 1. Cold-boot: the main kernel reserves a region of physical memory
    //    and loads a passive crash kernel into it.
    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("cold boot");
    println!(
        "booted: generation {}, crash kernel reserved at frames {:?}",
        ow.kernel().generation,
        ow.kernel().crash_region
    );

    // 2. A user edits a document in vi.
    let mut user = ViWorkload::new(2010);
    let pid = user.setup(ow.kernel_mut());
    for _ in 0..40 {
        user.drive(ow.kernel_mut(), pid);
    }
    let before = vi::read_state(ow.kernel_mut(), pid).expect("vi state");
    println!(
        "vi is editing: {} bytes of text, {} undo records",
        before.text.len(),
        before.undo.len()
    );

    // 3. The kernel hits a critical error.
    println!("\n*** kernel panic: NULL pointer dereference in kernel code ***");
    ow.kernel_mut().do_panic(PanicCause::Oops("NULL deref"));

    // 4. Otherworld microreboots: the crash kernel boots inside its
    //    reservation, resurrects vi from the dead kernel's memory, then
    //    morphs into the new main kernel.
    let report = ow.microreboot_now().expect("microreboot");
    println!(
        "microreboot complete: generation {}, read {} bytes of dead-kernel data \
         ({:.0}% page tables), {} pages copied",
        report.generation,
        report.stats.total_bytes,
        100.0 * report.stats.pt_fraction(),
        report.procs[0].pages_copied,
    );

    // 5. The editor continues from the exact point of interruption.
    let new_pid = ow.kernel().procs[0].pid;
    user.reconnect(ow.kernel_mut(), new_pid);
    let after = vi::read_state(ow.kernel_mut(), new_pid).expect("vi state");
    assert_eq!(before, after, "editor state must survive the crash");
    println!(
        "\nvi survived: text and undo history intact ({} bytes)",
        after.text.len()
    );

    // Keep typing on the new kernel.
    for _ in 0..20 {
        user.drive(ow.kernel_mut(), new_pid);
    }
    assert_eq!(user.verify(ow.kernel_mut(), new_pid), VerifyResult::Intact);
    println!("...and keeps accepting keystrokes. The crash was invisible.");
}
