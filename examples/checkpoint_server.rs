//! The in-memory checkpointing story of §5.4: BLCR modified to keep
//! checkpoints in RAM is ~an order of magnitude faster than checkpointing
//! to disk, but a kernel crash would normally destroy those checkpoints.
//! With Otherworld underneath, the checkpointed application — including its
//! in-memory checkpoint — survives the crash with **zero** changes and no
//! crash procedure.
//!
//! Run with: `cargo run --example checkpoint_server`

use otherworld::apps::blcr::{self, Blcr, BlcrWorkload, CkptMode};
use otherworld::apps::{VerifyResult, Workload};
use otherworld::core::{Otherworld, OtherworldConfig, ProcOutcome};
use otherworld::kernel::syscall::KernelApi;
use otherworld::kernel::{KernelConfig, PanicCause};
use otherworld::simhw::machine::MachineConfig;

fn main() {
    println!("== In-memory checkpoints surviving a kernel crash (§5.4) ==\n");

    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("boot");

    let pages = 32;
    let mut workload = BlcrWorkload::new(pages, CkptMode::Memory);
    let pid = workload.setup(ow.kernel_mut());

    // Run past a couple of checkpoints.
    for _ in 0..(pages * blcr::CKPT_PERIOD * 2 + 5) {
        workload.drive(ow.kernel_mut(), pid);
    }
    println!(
        "test app ({} KiB working set) checkpointing to MEMORY every {} passes",
        pages * 4,
        blcr::CKPT_PERIOD
    );

    println!("\n*** kernel panic — a traditional reboot would wipe the checkpoint ***");
    ow.kernel_mut()
        .do_panic(PanicCause::Oops("filesystem oops"));

    let report = ow.microreboot_now().expect("microreboot");
    let pr = report.proc_named("blcr").expect("resurrected");
    assert_eq!(pr.outcome, ProcOutcome::ContinuedTransparently);
    println!(
        "resurrected with no crash procedure; {} pages of app+checkpoint memory preserved",
        pr.pages_copied + pr.pages_mapped
    );

    let new_pid = pr.new_pid.expect("pid");
    workload.reconnect(ow.kernel_mut(), new_pid);
    assert_eq!(
        workload.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );

    // Restore from the surviving in-memory checkpoint (the whole point).
    let restored_iter = {
        let mut api = KernelApi::new(ow.kernel_mut(), new_pid);
        Blcr::restore(&mut api).expect("in-memory checkpoint intact")
    };
    let stamp = blcr::page_stamp(ow.kernel_mut(), new_pid, 0).expect("page");
    assert_eq!(stamp, blcr::stamp(restored_iter - 1, 0));
    println!(
        "rolled the application back to its in-memory checkpoint (iteration {restored_iter}) \
         — the checkpoint outlived the kernel that hosted it"
    );
}
