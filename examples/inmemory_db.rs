//! The in-memory database story of §5.2: MySQL's MEMORY storage engine
//! keeps tables in RAM for a 100x+ speedup, and Otherworld removes the
//! biggest risk of doing so — losing everything to a kernel crash. The
//! server's crash procedure dumps every table to disk through the PSE
//! functions and restarts with the dump on its command line.
//!
//! Run with: `cargo run --example inmemory_db`

use otherworld::apps::minidb::{self, MiniDbWorkload};
use otherworld::apps::{VerifyResult, Workload};
use otherworld::core::{Otherworld, OtherworldConfig, ProcOutcome};
use otherworld::kernel::{KernelConfig, PanicCause};
use otherworld::simhw::machine::MachineConfig;

fn main() {
    println!("== In-memory database across a kernel crash (§5.2) ==\n");

    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("boot");

    // A remote client INSERTs/UPDATEs/DELETEs over a socket.
    let mut client = MiniDbWorkload::new(5);
    let pid = client.setup(ow.kernel_mut());
    for _ in 0..60 {
        client.drive(ow.kernel_mut(), pid);
    }
    let before = minidb::read_db(ow.kernel_mut(), pid).expect("tables");
    let rows: usize = before.values().map(Vec::len).sum();
    println!(
        "mysqld serving {} tables, {rows} rows — all in memory",
        before.len()
    );

    println!("\n*** kernel panic while the server is mid-transaction ***");
    ow.kernel_mut()
        .do_panic(PanicCause::Oops("scheduler corruption"));

    let (outcome, new_pid, generation) = {
        let report = ow.microreboot_now().expect("microreboot");
        let pr = report.proc_named("mysqld").expect("resurrected");
        (pr.outcome.clone(), pr.new_pid, report.generation)
    };
    assert_eq!(outcome, ProcOutcome::SavedAndRestarted);
    println!(
        "crash procedure ran: dumped all tables to {} and restarted the server",
        minidb::DUMP_FILE
    );

    // The restarted server reloaded the dump; the client reconnects and
    // finds every row it wrote.
    let new_pid = new_pid.expect("restarted pid");
    client.reconnect(ow.kernel_mut(), new_pid);
    for _ in 0..8 {
        ow.kernel_mut().run_step();
    }
    assert_eq!(
        client.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );
    let after = minidb::read_db(ow.kernel_mut(), new_pid).expect("tables");
    let rows_after: usize = after.values().map(Vec::len).sum();
    println!("verified against the client's log: {rows_after} rows, zero lost");

    // And the service keeps running.
    for _ in 0..20 {
        client.drive(ow.kernel_mut(), new_pid);
    }
    assert_eq!(
        client.verify(ow.kernel_mut(), new_pid),
        VerifyResult::Intact
    );
    println!("new transactions committing normally on kernel generation {generation}");
}
