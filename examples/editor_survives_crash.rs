//! The JOE story of §5.1: the unmodified editor dies after resurrection
//! because it treats an interrupted console read as fatal; the one-line
//! "reissue failed reads" fix makes kernel crashes completely transparent —
//! text, undo history, window layout and even the on-screen contents
//! survive.
//!
//! Run with: `cargo run --example editor_survives_crash`

use otherworld::apps::joe::{self, JoeWorkload};
use otherworld::apps::Workload;
use otherworld::core::{Otherworld, OtherworldConfig};
use otherworld::kernel::{KernelConfig, PanicCause, RunEvent};
use otherworld::simhw::machine::MachineConfig;

fn run_editor(unfixed: bool) -> (bool, String) {
    let mut ow = Otherworld::boot(
        MachineConfig::default(),
        KernelConfig::default(),
        OtherworldConfig::default(),
        otherworld::apps::full_registry(),
    )
    .expect("boot");

    let mut user = JoeWorkload::new(7);
    user.unfixed = unfixed;
    let pid = user.setup(ow.kernel_mut());
    for _ in 0..30 {
        user.drive(ow.kernel_mut(), pid);
    }
    let state = joe::read_state(ow.kernel_mut(), pid).expect("joe state");
    let summary = format!(
        "window0={}B window1={}B undo={} syntax={}",
        state.text[0].len(),
        state.text[1].len(),
        state.undo.len(),
        state.syntax
    );

    // Crash mid-session, with the editor blocked in a console read.
    ow.kernel_mut().pending_fault = Some(otherworld::kernel::PendingFault {
        cause: PanicCause::Oops("editor demo"),
        in_syscall: true,
    });
    // Feed a key so the editor enters term_read and the fault fires inside
    // the system call.
    let term = ow.kernel().procs[0].name.clone();
    let _ = term;
    for _ in 0..8 {
        if let RunEvent::Panicked = ow.kernel_mut().run_step() {
            break;
        }
    }
    assert!(ow.is_panicked(), "the queued fault must fire");

    ow.microreboot_now().expect("microreboot");

    // The resurrected editor's first console read returns ERESTART. The
    // unfixed JOE exits; the fixed one reissues the read.
    let new_pid = ow.kernel().procs.first().map(|p| p.pid);
    let Some(new_pid) = new_pid else {
        return (false, summary);
    };
    user.reconnect(ow.kernel_mut(), new_pid);
    for _ in 0..6 {
        ow.kernel_mut().run_step();
    }
    let alive = ow.kernel().procs.iter().any(|p| p.name.starts_with("joe"));
    if !alive {
        return (false, summary);
    }
    let after = joe::read_state(ow.kernel_mut(), new_pid).expect("state");
    let after_summary = format!(
        "window0={}B window1={}B undo={} syntax={}",
        after.text[0].len(),
        after.text[1].len(),
        after.undo.len(),
        after.syntax
    );
    assert_eq!(summary, after_summary, "editor state must be preserved");
    (true, summary)
}

fn main() {
    println!("== JOE across a kernel crash (§5.1) ==\n");

    let (alive, state) = run_editor(true);
    println!("unfixed JOE  [{state}]");
    println!(
        "  -> after microreboot: {}",
        if alive {
            "survived (unexpected!)"
        } else {
            "TERMINATED ITSELF — it treats the interrupted read's error code as fatal"
        }
    );
    assert!(!alive);

    let (alive, state) = run_editor(false);
    println!("\nfixed JOE    [{state}]  (one line changed: reissue failed reads)");
    println!(
        "  -> after microreboot: {}",
        if alive {
            "ALIVE — windows, undo buffer and syntax mode all intact"
        } else {
            "died (unexpected!)"
        }
    );
    assert!(alive);
}
