#!/usr/bin/env bash
# Tier-1 verification gate. Run before every commit; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
# The crash-point subsystem is compiled out by default; test it explicitly.
cargo test -p ow-crashpoint --features crashpoint -q
cargo test -p ow-faultinject --features crashpoint -q

# Parallel==serial determinism smoke: the sharded campaign engine must emit
# byte-identical JSON for any --jobs value.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 5 --jobs 1 --json "$smoke_dir/jobs1.json" >/dev/null
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 5 --jobs 4 --json "$smoke_dir/jobs4.json" >/dev/null
cmp "$smoke_dir/jobs1.json" "$smoke_dir/jobs4.json" \
    || { echo "table5 --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }

# Crash-point campaign determinism: one app x all points x one mode, the
# whole panic->handoff->crash-boot->resurrect->morph pipeline per cell,
# byte-identical for any --jobs value and zero policy violations.
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --jobs 1 --json "$smoke_dir/cp1.json" >/dev/null
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --jobs 4 --json "$smoke_dir/cp4.json" >/dev/null
cmp "$smoke_dir/cp1.json" "$smoke_dir/cp4.json" \
    || { echo "crashpoints --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }

# The same slice under warm morph + lazy resurrection: the validate-then-
# adopt path must be just as deterministic and just as policy-clean (the
# binary exits non-zero on any unexpected cell).
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --morph warm --strategy lazy \
    --jobs 1 --json "$smoke_dir/cpw1.json" >/dev/null
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --morph warm --strategy lazy \
    --jobs 4 --json "$smoke_dir/cpw4.json" >/dev/null
cmp "$smoke_dir/cpw1.json" "$smoke_dir/cpw4.json" \
    || { echo "warm/lazy crashpoints --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }

# The same slice with rollback-in-place (rung 0) enabled: the epoch
# validate/apply path and its fall-through must be deterministic and
# policy-clean too.
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --rollback \
    --jobs 1 --json "$smoke_dir/cpr1.json" >/dev/null
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --rollback \
    --jobs 4 --json "$smoke_dir/cpr4.json" >/dev/null
cmp "$smoke_dir/cpr1.json" "$smoke_dir/cpr4.json" \
    || { echo "rollback crashpoints --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }

# Perf-trajectory artifacts: the committed BENCH_*.json files must match
# what the bench binaries emit at the pinned sizes/seeds (deterministic:
# simulated time only). Regenerate with the two commands below when a
# change legitimately moves the numbers.
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 40 --jobs 4 --json "$smoke_dir/BENCH_table5.json" >/dev/null
cargo run -q -p ow-bench --release --bin recovery -- \
    --experiments 40 --jobs 4 --json "$smoke_dir/BENCH_recovery.json" >/dev/null
# Table 6 is the warm-vs-cold determinism slice: the full four-config
# matrix is regenerated at --jobs 1 and --jobs 4 and must be byte-identical
# to itself and to the committed artifact (adoption flags included).
cargo run -q -p ow-bench --release --bin table6 -- \
    --jobs 1 --json "$smoke_dir/t6_jobs1.json" >/dev/null
cargo run -q -p ow-bench --release --bin table6 -- \
    --jobs 4 --json "$smoke_dir/BENCH_table6.json" >/dev/null
cmp "$smoke_dir/t6_jobs1.json" "$smoke_dir/BENCH_table6.json" \
    || { echo "table6 --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }
# Table 3 is the protected-mode overhead matrix (tagged vs untagged TLB):
# regenerated at --jobs 1 and --jobs 4, byte-identical to itself and to the
# committed artifact.
cargo run -q -p ow-bench --release --bin table3 -- \
    --batches 80 --jobs 1 --json "$smoke_dir/t3_jobs1.json" >/dev/null
cargo run -q -p ow-bench --release --bin table3 -- \
    --batches 80 --jobs 4 --json "$smoke_dir/BENCH_table3.json" >/dev/null
cmp "$smoke_dir/t3_jobs1.json" "$smoke_dir/BENCH_table3.json" \
    || { echo "table3 --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }
for f in BENCH_table5.json BENCH_recovery.json BENCH_table6.json BENCH_table3.json; do
    cmp "$smoke_dir/$f" "$f" \
        || { echo "$f is stale; regenerate it (see ci.sh) and commit" >&2; exit 1; }
done

cargo clippy --all-targets --all-features -- -D warnings
cargo run -p ow-lint --release -- --deny
# The lint's active allow list is a committed baseline: a new escape hatch
# (or a silently grown one) must show up in the diff. Regenerate with the
# command below when an allow is deliberately added or removed.
cargo run -q -p ow-lint --release -- --json > "$smoke_dir/BENCH_lint.json"
cmp "$smoke_dir/BENCH_lint.json" BENCH_lint.json \
    || { echo "BENCH_lint.json is stale; regenerate it (see ci.sh) and commit" >&2; exit 1; }
cargo fmt --check
cargo doc --no-deps
