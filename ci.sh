#!/usr/bin/env bash
# Tier-1 verification gate. Run before every commit; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q

# Parallel==serial determinism smoke: the sharded campaign engine must emit
# byte-identical JSON for any --jobs value.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 5 --jobs 1 --json "$smoke_dir/jobs1.json" >/dev/null
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 5 --jobs 4 --json "$smoke_dir/jobs4.json" >/dev/null
cmp "$smoke_dir/jobs1.json" "$smoke_dir/jobs4.json" \
    || { echo "table5 --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }
cargo clippy --all-targets --all-features -- -D warnings
cargo run -p ow-lint --release -- --deny
cargo fmt --check
cargo doc --no-deps
