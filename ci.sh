#!/usr/bin/env bash
# Tier-1 verification gate. Run before every commit; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo clippy --all-targets --all-features -- -D warnings
cargo run -p ow-lint --release -- --deny
cargo fmt --check
cargo doc --no-deps
