#!/usr/bin/env bash
# Tier-1 verification gate. Run before every commit; everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
# The crash-point subsystem is compiled out by default; test it explicitly.
cargo test -p ow-crashpoint --features crashpoint -q
cargo test -p ow-faultinject --features crashpoint -q

# Parallel==serial determinism smoke: the sharded campaign engine must emit
# byte-identical JSON for any --jobs value.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 5 --jobs 1 --json "$smoke_dir/jobs1.json" >/dev/null
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 5 --jobs 4 --json "$smoke_dir/jobs4.json" >/dev/null
cmp "$smoke_dir/jobs1.json" "$smoke_dir/jobs4.json" \
    || { echo "table5 --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }

# Crash-point campaign determinism: one app x all points x one mode, the
# whole panic->handoff->crash-boot->resurrect->morph pipeline per cell,
# byte-identical for any --jobs value and zero policy violations.
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --jobs 1 --json "$smoke_dir/cp1.json" >/dev/null
cargo run -q -p ow-bench --release --features crashpoint --bin crashpoints -- \
    --app vi --mode unprotected --jobs 4 --json "$smoke_dir/cp4.json" >/dev/null
cmp "$smoke_dir/cp1.json" "$smoke_dir/cp4.json" \
    || { echo "crashpoints --json differs between --jobs 1 and --jobs 4" >&2; exit 1; }

# Perf-trajectory artifacts: the committed BENCH_*.json files must match
# what the bench binaries emit at the pinned sizes/seeds (deterministic:
# simulated time only). Regenerate with the two commands below when a
# change legitimately moves the numbers.
cargo run -q -p ow-bench --release --bin table5 -- \
    --experiments 40 --jobs 4 --json "$smoke_dir/BENCH_table5.json" >/dev/null
cargo run -q -p ow-bench --release --bin recovery -- \
    --experiments 40 --jobs 4 --json "$smoke_dir/BENCH_recovery.json" >/dev/null
for f in BENCH_table5.json BENCH_recovery.json; do
    cmp "$smoke_dir/$f" "$f" \
        || { echo "$f is stale; regenerate it (see ci.sh) and commit" >&2; exit 1; }
done

cargo clippy --all-targets --all-features -- -D warnings
cargo run -p ow-lint --release -- --deny
cargo fmt --check
cargo doc --no-deps
